#include <gtest/gtest.h>

#include "kernel/kernel_image.hpp"
#include "kernel/kernel_runtime.hpp"
#include "kernel/syscalls.hpp"

namespace lfi::kernel {
namespace {

// ---- syscall table ------------------------------------------------------------

TEST(Syscalls, TableOrderedAndUnique) {
  const auto& table = SyscallTable();
  std::set<uint16_t> numbers;
  for (const auto& spec : table) {
    EXPECT_TRUE(numbers.insert(static_cast<uint16_t>(spec.number)).second)
        << spec.name;
  }
}

TEST(Syscalls, FindByNumber) {
  const SyscallSpec* spec = FindSyscall(static_cast<uint16_t>(Sys::CLOSE));
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->name, "close");
  EXPECT_EQ(FindSyscall(9999), nullptr);
}

TEST(Syscalls, CloseErrorsMatchPaperExample) {
  // §3.3: close can fail with EBADF, EIO, EINTR on Linux.
  const SyscallSpec* spec = FindSyscall(static_cast<uint16_t>(Sys::CLOSE));
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->errors, (std::vector<int32_t>{E_BADF, E_IO, E_INTR}));
}

TEST(Syscalls, ErrorIndexLookup) {
  const SyscallSpec* spec = FindSyscall(static_cast<uint16_t>(Sys::READ));
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(ErrorIndex(*spec, E_BADF), 0);
  EXPECT_EQ(ErrorIndex(*spec, E_AGAIN), 3);
  EXPECT_EQ(ErrorIndex(*spec, E_NOMEM), -1);
}

TEST(Syscalls, HandlerNames) {
  const SyscallSpec* spec = FindSyscall(static_cast<uint16_t>(Sys::ALLOC));
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(HandlerName(*spec), "sys_alloc");
}

// ---- kernel image --------------------------------------------------------------

TEST(KernelImage, ExportsOneHandlerPerSyscall) {
  sso::SharedObject img = BuildKernelImage();
  EXPECT_EQ(img.name, std::string(kKernelImageName));
  for (const auto& spec : SyscallTable()) {
    EXPECT_NE(img.find_export(HandlerName(spec)), nullptr) << spec.name;
  }
}

TEST(KernelImage, HandlersContainErrnoConstants) {
  // The profiler's kernel analysis depends on the -errno constants being
  // literally present in handler code (§3.1).
  sso::SharedObject img = BuildKernelImage();
  const isa::Symbol* close_h = img.find_export("sys_close");
  ASSERT_NE(close_h, nullptr);
  auto instrs = isa::Disassemble(img.code, close_h->offset,
                                 close_h->offset + close_h->size);
  ASSERT_TRUE(instrs.ok());
  std::set<int64_t> constants;
  for (const auto& ins : instrs.value()) {
    if (ins.op == isa::Opcode::MOV_RI && ins.a == isa::Reg::R0) {
      constants.insert(ins.imm);
    }
  }
  EXPECT_TRUE(constants.count(-E_BADF));
  EXPECT_TRUE(constants.count(-E_IO));
  EXPECT_TRUE(constants.count(-E_INTR));
}

TEST(KernelImage, HandlersStartWithKcall) {
  sso::SharedObject img = BuildKernelImage();
  for (const auto& spec : SyscallTable()) {
    const isa::Symbol* sym = img.find_export(HandlerName(spec));
    auto first = isa::DecodeOne(img.code, sym->offset);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value().op, isa::Opcode::KCALL) << spec.name;
    EXPECT_EQ(first.value().u16, static_cast<uint16_t>(spec.number));
  }
}

// ---- runtime -------------------------------------------------------------------

/// A minimal KernelContext: flat memory at [0, 64K), direct registers.
class FakeContext : public KernelContext {
 public:
  FakeContext() : mem_(64 * 1024, 0) {}

  int64_t reg(isa::Reg r) const override {
    return regs_[static_cast<size_t>(r)];
  }
  void set_reg(isa::Reg r, int64_t v) override {
    regs_[static_cast<size_t>(r)] = v;
  }
  bool read_mem(uint64_t addr, void* out, uint64_t len) override {
    if (addr + len > mem_.size()) return false;
    memcpy(out, mem_.data() + addr, len);
    return true;
  }
  bool write_mem(uint64_t addr, const void* src, uint64_t len) override {
    if (addr + len > mem_.size()) return false;
    memcpy(mem_.data() + addr, src, len);
    return true;
  }
  uint64_t alloc_heap(uint64_t size) override {
    if (heap_ + size > 32 * 1024) return 0;
    uint64_t at = 0x4000 + heap_;
    heap_ += size;
    return at;
  }
  int pid() const override { return 1; }
  void request_exit(int64_t code) override { exit_code_ = code; }

  void put_string(uint64_t addr, const std::string& s) {
    memcpy(mem_.data() + addr, s.c_str(), s.size() + 1);
  }
  int64_t regs_[isa::kNumRegs] = {};
  std::vector<uint8_t> mem_;
  uint64_t heap_ = 0;
  int64_t exit_code_ = -1;
};

uint16_t N(Sys s) { return static_cast<uint16_t>(s); }

TEST(KernelRuntime, OpenMissingFileFailsENOENT) {
  KernelRuntime kr;
  FakeContext ctx;
  ctx.put_string(100, "/nope");
  ctx.set_reg(isa::Reg::R1, 100);
  ctx.set_reg(isa::Reg::R2, 0);
  KResult r = kr.Invoke(N(Sys::OPEN), ctx);
  EXPECT_EQ(r.kind, KResult::Kind::Fail);
  EXPECT_EQ(r.error, E_NOENT);
}

TEST(KernelRuntime, OpenCreatReadWriteRoundTrip) {
  KernelRuntime kr;
  FakeContext ctx;
  ctx.put_string(100, "/f");
  ctx.set_reg(isa::Reg::R1, 100);
  ctx.set_reg(isa::Reg::R2, 0x40);  // O_CREAT
  KResult open = kr.Invoke(N(Sys::OPEN), ctx);
  ASSERT_EQ(open.kind, KResult::Kind::Ok);
  int64_t fd = open.value;
  EXPECT_GE(fd, 3);

  ctx.put_string(200, "hello");
  ctx.set_reg(isa::Reg::R1, fd);
  ctx.set_reg(isa::Reg::R2, 200);
  ctx.set_reg(isa::Reg::R3, 5);
  KResult wr = kr.Invoke(N(Sys::WRITE), ctx);
  ASSERT_EQ(wr.kind, KResult::Kind::Ok);
  EXPECT_EQ(wr.value, 5);

  // Seek back and read.
  ctx.set_reg(isa::Reg::R1, fd);
  ctx.set_reg(isa::Reg::R2, 0);
  ctx.set_reg(isa::Reg::R3, 0);  // SEEK_SET
  ASSERT_EQ(kr.Invoke(N(Sys::LSEEK), ctx).kind, KResult::Kind::Ok);
  ctx.set_reg(isa::Reg::R1, fd);
  ctx.set_reg(isa::Reg::R2, 300);
  ctx.set_reg(isa::Reg::R3, 16);
  KResult rd = kr.Invoke(N(Sys::READ), ctx);
  ASSERT_EQ(rd.kind, KResult::Kind::Ok);
  EXPECT_EQ(rd.value, 5);
  EXPECT_EQ(memcmp(ctx.mem_.data() + 300, "hello", 5), 0);
}

TEST(KernelRuntime, ReadBadFdFails) {
  KernelRuntime kr;
  FakeContext ctx;
  ctx.set_reg(isa::Reg::R1, 42);
  KResult r = kr.Invoke(N(Sys::READ), ctx);
  EXPECT_EQ(r.kind, KResult::Kind::Fail);
  EXPECT_EQ(r.error, E_BADF);
}

TEST(KernelRuntime, CloseBadFdFails) {
  KernelRuntime kr;
  FakeContext ctx;
  ctx.set_reg(isa::Reg::R1, 42);
  KResult r = kr.Invoke(N(Sys::CLOSE), ctx);
  EXPECT_EQ(r.kind, KResult::Kind::Fail);
  EXPECT_EQ(r.error, E_BADF);
}

TEST(KernelRuntime, FdExhaustionEMFILE) {
  KernelRuntime kr;
  FakeContext ctx;
  kr.add_file("/f", {1, 2, 3});
  ctx.put_string(100, "/f");
  ctx.set_reg(isa::Reg::R1, 100);
  ctx.set_reg(isa::Reg::R2, 0);
  KResult last;
  for (int i = 0; i < 70; ++i) last = kr.Invoke(N(Sys::OPEN), ctx);
  EXPECT_EQ(last.kind, KResult::Kind::Fail);
  EXPECT_EQ(last.error, E_MFILE);
}

TEST(KernelRuntime, StatReportsSize) {
  KernelRuntime kr;
  FakeContext ctx;
  kr.add_file("/f", std::vector<uint8_t>(123, 7));
  ctx.put_string(100, "/f");
  ctx.set_reg(isa::Reg::R1, 100);
  ctx.set_reg(isa::Reg::R2, 500);
  KResult r = kr.Invoke(N(Sys::STAT), ctx);
  ASSERT_EQ(r.kind, KResult::Kind::Ok);
  int64_t size = 0;
  memcpy(&size, ctx.mem_.data() + 500, 8);
  EXPECT_EQ(size, 123);
}

TEST(KernelRuntime, UnlinkRemoves) {
  KernelRuntime kr;
  FakeContext ctx;
  kr.add_file("/f", {1});
  ctx.put_string(100, "/f");
  ctx.set_reg(isa::Reg::R1, 100);
  EXPECT_EQ(kr.Invoke(N(Sys::UNLINK), ctx).kind, KResult::Kind::Ok);
  EXPECT_FALSE(kr.has_file("/f"));
  EXPECT_EQ(kr.Invoke(N(Sys::UNLINK), ctx).error, E_NOENT);
}

TEST(KernelRuntime, AllocFailsWithENOMEMAtCap) {
  KernelRuntime kr;
  FakeContext ctx;
  ctx.set_reg(isa::Reg::R1, 16 * 1024);
  EXPECT_EQ(kr.Invoke(N(Sys::ALLOC), ctx).kind, KResult::Kind::Ok);
  ctx.set_reg(isa::Reg::R1, 64 * 1024);  // beyond FakeContext's 32K heap
  KResult r = kr.Invoke(N(Sys::ALLOC), ctx);
  EXPECT_EQ(r.kind, KResult::Kind::Fail);
  EXPECT_EQ(r.error, E_NOMEM);
}

TEST(KernelRuntime, PipeWriteReadAcrossEnds) {
  KernelRuntime kr;
  FakeContext ctx;
  ctx.set_reg(isa::Reg::R1, 100);
  ASSERT_EQ(kr.Invoke(N(Sys::PIPE), ctx).kind, KResult::Kind::Ok);
  int64_t rfd = 0, wfd = 0;
  memcpy(&rfd, ctx.mem_.data() + 100, 8);
  memcpy(&wfd, ctx.mem_.data() + 108, 8);

  ctx.put_string(200, "msg");
  ctx.set_reg(isa::Reg::R1, wfd);
  ctx.set_reg(isa::Reg::R2, 200);
  ctx.set_reg(isa::Reg::R3, 3);
  ASSERT_EQ(kr.Invoke(N(Sys::WRITE), ctx).value, 3);

  ctx.set_reg(isa::Reg::R1, rfd);
  ctx.set_reg(isa::Reg::R2, 300);
  ctx.set_reg(isa::Reg::R3, 16);
  KResult rd = kr.Invoke(N(Sys::READ), ctx);
  EXPECT_EQ(rd.value, 3);
  EXPECT_EQ(memcmp(ctx.mem_.data() + 300, "msg", 3), 0);
}

TEST(KernelRuntime, EmptyPipeBlocksWhileWriterOpen) {
  KernelRuntime kr;
  FakeContext ctx;
  ctx.set_reg(isa::Reg::R1, 100);
  ASSERT_EQ(kr.Invoke(N(Sys::PIPE), ctx).kind, KResult::Kind::Ok);
  int64_t rfd = 0;
  memcpy(&rfd, ctx.mem_.data() + 100, 8);
  ctx.set_reg(isa::Reg::R1, rfd);
  ctx.set_reg(isa::Reg::R2, 300);
  ctx.set_reg(isa::Reg::R3, 8);
  EXPECT_EQ(kr.Invoke(N(Sys::READ), ctx).kind, KResult::Kind::Block);
}

TEST(KernelRuntime, PipeEofAfterWriterCloses) {
  KernelRuntime kr;
  FakeContext ctx;
  ctx.set_reg(isa::Reg::R1, 100);
  ASSERT_EQ(kr.Invoke(N(Sys::PIPE), ctx).kind, KResult::Kind::Ok);
  int64_t rfd = 0, wfd = 0;
  memcpy(&rfd, ctx.mem_.data() + 100, 8);
  memcpy(&wfd, ctx.mem_.data() + 108, 8);
  ctx.set_reg(isa::Reg::R1, wfd);
  ASSERT_EQ(kr.Invoke(N(Sys::CLOSE), ctx).kind, KResult::Kind::Ok);
  ctx.set_reg(isa::Reg::R1, rfd);
  ctx.set_reg(isa::Reg::R2, 300);
  ctx.set_reg(isa::Reg::R3, 8);
  KResult rd = kr.Invoke(N(Sys::READ), ctx);
  EXPECT_EQ(rd.kind, KResult::Kind::Ok);
  EXPECT_EQ(rd.value, 0);  // EOF
}

TEST(KernelRuntime, WriteToReaderlessPipeEPIPE) {
  KernelRuntime kr;
  FakeContext ctx;
  ctx.set_reg(isa::Reg::R1, 100);
  ASSERT_EQ(kr.Invoke(N(Sys::PIPE), ctx).kind, KResult::Kind::Ok);
  int64_t rfd = 0, wfd = 0;
  memcpy(&rfd, ctx.mem_.data() + 100, 8);
  memcpy(&wfd, ctx.mem_.data() + 108, 8);
  ctx.set_reg(isa::Reg::R1, rfd);
  ASSERT_EQ(kr.Invoke(N(Sys::CLOSE), ctx).kind, KResult::Kind::Ok);
  ctx.set_reg(isa::Reg::R1, wfd);
  ctx.set_reg(isa::Reg::R2, 200);
  ctx.set_reg(isa::Reg::R3, 1);
  KResult r = kr.Invoke(N(Sys::WRITE), ctx);
  EXPECT_EQ(r.kind, KResult::Kind::Fail);
  EXPECT_EQ(r.error, E_PIPE);
}

TEST(KernelRuntime, ConnectRefusedWithoutListener) {
  KernelRuntime kr;
  FakeContext ctx;
  KResult sock = kr.Invoke(N(Sys::SOCKET), ctx);
  ASSERT_EQ(sock.kind, KResult::Kind::Ok);
  ctx.set_reg(isa::Reg::R1, sock.value);
  ctx.set_reg(isa::Reg::R2, 80);
  KResult r = kr.Invoke(N(Sys::CONNECT), ctx);
  EXPECT_EQ(r.kind, KResult::Kind::Fail);
  EXPECT_EQ(r.error, E_CONNREFUSED);
}

TEST(KernelRuntime, SocketSendRecvThroughHostHooks) {
  KernelRuntime kr;
  kr.listen(80);
  FakeContext ctx;
  KResult sock = kr.Invoke(N(Sys::SOCKET), ctx);
  ASSERT_EQ(sock.kind, KResult::Kind::Ok);
  int64_t fd = sock.value;
  ctx.set_reg(isa::Reg::R1, fd);
  ctx.set_reg(isa::Reg::R2, 80);
  ASSERT_EQ(kr.Invoke(N(Sys::CONNECT), ctx).kind, KResult::Kind::Ok);

  ctx.put_string(200, "GET /");
  ctx.set_reg(isa::Reg::R1, fd);
  ctx.set_reg(isa::Reg::R2, 200);
  ctx.set_reg(isa::Reg::R3, 5);
  ASSERT_EQ(kr.Invoke(N(Sys::SEND), ctx).value, 5);
  auto sent = kr.socket_sent(1, fd);
  EXPECT_EQ(std::string(sent.begin(), sent.end()), "GET /");

  ASSERT_TRUE(kr.feed_socket(1, fd, {'O', 'K'}));
  ctx.set_reg(isa::Reg::R1, fd);
  ctx.set_reg(isa::Reg::R2, 300);
  ctx.set_reg(isa::Reg::R3, 16);
  EXPECT_EQ(kr.Invoke(N(Sys::RECV), ctx).value, 2);
}

TEST(KernelRuntime, ExitRecordedAndWaitReturnsIt) {
  KernelRuntime kr;
  FakeContext ctx;
  kr.on_process_exit(7, 42);
  ctx.set_reg(isa::Reg::R1, 7);
  KResult r = kr.Invoke(N(Sys::WAIT), ctx);
  EXPECT_EQ(r.kind, KResult::Kind::Ok);
  EXPECT_EQ(r.value, 42);
  EXPECT_EQ(kr.exit_code(7), 42);
}

TEST(KernelRuntime, WaitForRunningBlocks) {
  KernelRuntime kr;
  FakeContext ctx;
  ctx.set_reg(isa::Reg::R1, 3);
  EXPECT_EQ(kr.Invoke(N(Sys::WAIT), ctx).kind, KResult::Kind::Block);
}

TEST(KernelRuntime, ProcessExitClosesFds) {
  KernelRuntime kr;
  FakeContext ctx;
  kr.add_file("/f", {1});
  ctx.put_string(100, "/f");
  ctx.set_reg(isa::Reg::R1, 100);
  ctx.set_reg(isa::Reg::R2, 0);
  ASSERT_EQ(kr.Invoke(N(Sys::OPEN), ctx).kind, KResult::Kind::Ok);
  EXPECT_EQ(kr.open_fd_count(1), 1u);
  kr.on_process_exit(1, 0);
  EXPECT_EQ(kr.open_fd_count(1), 0u);
}

TEST(KernelRuntime, GetpidAndYield) {
  KernelRuntime kr;
  FakeContext ctx;
  EXPECT_EQ(kr.Invoke(N(Sys::GETPID), ctx).value, 1);
  EXPECT_EQ(kr.Invoke(N(Sys::YIELD), ctx).kind, KResult::Kind::Ok);
}

TEST(KernelRuntime, UnknownSyscallENOSYS) {
  KernelRuntime kr;
  FakeContext ctx;
  KResult r = kr.Invoke(999, ctx);
  EXPECT_EQ(r.kind, KResult::Kind::Fail);
  EXPECT_EQ(r.error, E_NOSYS);
}

TEST(KernelRuntime, ExitRequestsContextExit) {
  KernelRuntime kr;
  FakeContext ctx;
  ctx.set_reg(isa::Reg::R1, 5);
  kr.Invoke(N(Sys::EXIT), ctx);
  EXPECT_EQ(ctx.exit_code_, 5);
}

}  // namespace
}  // namespace lfi::kernel
