#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/errno_table.hpp"

namespace lfi::libc {
namespace {

using isa::CodeBuilder;
using isa::Reg;
using test::RunEntry;

/// Harness: build an app that runs `body` and returns R0 as the exit code.
class LibcTest : public ::testing::Test {
 public:
  template <typename Body>
  test::RunResult Run(Body&& body, vm::Machine* use = nullptr) {
    CodeBuilder b;
    path_slot_ = b.emit_data(CStr("/tmp/file"));
    missing_slot_ = b.emit_data(CStr("/missing"));
    buf_slot_ = b.reserve_data(256);
    b.begin_function("main");
    b.sub_ri(Reg::SP, 32);
    body(b, *this);
    b.leave_ret();
    b.end_function();
    vm::Machine local;
    vm::Machine& machine = use ? *use : local;
    machine.Load(BuildLibc());
    machine.kernel().add_file("/tmp/file", {'h', 'e', 'l', 'l', 'o'});
    machine.Load(sso::FromCodeUnit("app.so", b.Finish(), {kLibcName}));
    return RunEntry(machine, "main");
  }

  static std::vector<uint8_t> CStr(const char* s) {
    std::vector<uint8_t> v;
    for (; *s; ++s) v.push_back(static_cast<uint8_t>(*s));
    v.push_back(0);
    return v;
  }

  uint32_t path_slot_ = 0;
  uint32_t missing_slot_ = 0;
  uint32_t buf_slot_ = 0;
};

TEST_F(LibcTest, OpenReadCloseHappyPath) {
  auto r = Run([](CodeBuilder& b, LibcTest& t) {
    b.mov_ri(Reg::R2, O_RDONLY);
    b.lea_data(Reg::R1, static_cast<int32_t>(t.path_slot_));
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("open");
    b.add_ri(Reg::SP, 16);
    b.store(Reg::BP, -8, Reg::R0);  // fd
    // read(fd, buf, 64) -> 5
    b.load(Reg::R1, Reg::BP, -8);
    b.lea_data(Reg::R2, static_cast<int32_t>(t.buf_slot_));
    b.mov_ri(Reg::R3, 64);
    b.push(Reg::R3);
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("read");
    b.add_ri(Reg::SP, 24);
    b.store(Reg::BP, -16, Reg::R0);  // bytes read
    b.load(Reg::R1, Reg::BP, -8);
    b.push(Reg::R1);
    b.call_sym("close");
    b.add_ri(Reg::SP, 8);
    b.load(Reg::R0, Reg::BP, -16);
  });
  EXPECT_EQ(r.state, vm::ProcState::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, 5);
}

TEST_F(LibcTest, OpenMissingSetsErrnoENOENT) {
  auto r = Run([](CodeBuilder& b, LibcTest& t) {
    b.mov_ri(Reg::R2, O_RDONLY);
    b.lea_data(Reg::R1, static_cast<int32_t>(t.missing_slot_));
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("open");
    b.add_ri(Reg::SP, 16);
    b.store(Reg::BP, -8, Reg::R0);
    b.call_sym("geterrno");
    b.mov_rr(Reg::R1, Reg::R0);
    b.load(Reg::R2, Reg::BP, -8);
    // exit code = errno * 100 + (-retval)
    b.mul_ri(Reg::R1, 100);
    b.neg(Reg::R2);
    b.add_rr(Reg::R1, Reg::R2);
    b.mov_rr(Reg::R0, Reg::R1);
  });
  EXPECT_EQ(r.exit_code, E_NOENT * 100 + 1);  // errno=ENOENT, retval=-1
}

TEST_F(LibcTest, ReadBadFdSetsErrnoEBADF) {
  auto r = Run([](CodeBuilder& b, LibcTest& t) {
    b.mov_ri(Reg::R1, 55);
    b.lea_data(Reg::R2, static_cast<int32_t>(t.buf_slot_));
    b.mov_ri(Reg::R3, 8);
    b.push(Reg::R3);
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("read");
    b.add_ri(Reg::SP, 24);
    b.call_sym("geterrno");
  });
  EXPECT_EQ(r.exit_code, E_BADF);
}

TEST_F(LibcTest, WriteAppendsToFile) {
  vm::Machine machine;
  auto r = Run(
      [](CodeBuilder& b, LibcTest& t) {
        b.mov_ri(Reg::R2, O_WRONLY | O_TRUNC);
        b.lea_data(Reg::R1, static_cast<int32_t>(t.path_slot_));
        b.push(Reg::R2);
        b.push(Reg::R1);
        b.call_sym("open");
        b.add_ri(Reg::SP, 16);
        b.store(Reg::BP, -8, Reg::R0);
        b.load(Reg::R1, Reg::BP, -8);
        b.lea_data(Reg::R2, static_cast<int32_t>(t.path_slot_));  // any bytes
        b.mov_ri(Reg::R3, 4);
        b.push(Reg::R3);
        b.push(Reg::R2);
        b.push(Reg::R1);
        b.call_sym("write");
        b.add_ri(Reg::SP, 24);
      },
      &machine);
  EXPECT_EQ(r.exit_code, 4);
  EXPECT_EQ(machine.kernel().file_contents("/tmp/file").size(), 4u);
}

TEST_F(LibcTest, MallocReturnsDistinctHeapPointers) {
  auto r = Run([](CodeBuilder& b, LibcTest&) {
    b.mov_ri(Reg::R1, 64);
    b.push(Reg::R1);
    b.call_sym("malloc");
    b.add_ri(Reg::SP, 8);
    b.store(Reg::BP, -8, Reg::R0);
    b.mov_ri(Reg::R1, 64);
    b.push(Reg::R1);
    b.call_sym("malloc");
    b.add_ri(Reg::SP, 8);
    b.load(Reg::R1, Reg::BP, -8);
    b.sub_rr(Reg::R0, Reg::R1);  // second - first > 0
  });
  EXPECT_GE(r.exit_code, 64);
}

TEST_F(LibcTest, MallocBeyondCapReturnsNullAndENOMEM) {
  auto r = Run([](CodeBuilder& b, LibcTest&) {
    b.mov_ri(Reg::R1, 1LL << 40);
    b.push(Reg::R1);
    b.call_sym("malloc");
    b.add_ri(Reg::SP, 8);
    b.store(Reg::BP, -8, Reg::R0);
    b.call_sym("geterrno");
    b.mov_rr(Reg::R1, Reg::R0);
    b.load(Reg::R2, Reg::BP, -8);
    b.add_rr(Reg::R1, Reg::R2);  // NULL + ENOMEM = ENOMEM
    b.mov_rr(Reg::R0, Reg::R1);
  });
  EXPECT_EQ(r.exit_code, E_NOMEM);
}

TEST_F(LibcTest, CallocMultipliesThroughMalloc) {
  auto r = Run([](CodeBuilder& b, LibcTest&) {
    b.mov_ri(Reg::R1, 1LL << 30);
    b.mov_ri(Reg::R2, 1LL << 30);
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("calloc");  // 2^60 bytes: fails
    b.add_ri(Reg::SP, 16);
  });
  EXPECT_EQ(r.exit_code, 0);  // NULL
}

TEST_F(LibcTest, LseekSetAndEnd) {
  auto r = Run([](CodeBuilder& b, LibcTest& t) {
    b.mov_ri(Reg::R2, O_RDONLY);
    b.lea_data(Reg::R1, static_cast<int32_t>(t.path_slot_));
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("open");
    b.add_ri(Reg::SP, 16);
    b.store(Reg::BP, -8, Reg::R0);
    // lseek(fd, 0, SEEK_END) == 5
    b.load(Reg::R1, Reg::BP, -8);
    b.mov_ri(Reg::R2, 0);
    b.mov_ri(Reg::R3, 2);
    b.push(Reg::R3);
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("lseek");
    b.add_ri(Reg::SP, 24);
  });
  EXPECT_EQ(r.exit_code, 5);
}

TEST_F(LibcTest, StatMissingFails) {
  auto r = Run([](CodeBuilder& b, LibcTest& t) {
    b.lea_data(Reg::R1, static_cast<int32_t>(t.missing_slot_));
    b.mov_ri(Reg::R2, 0);
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("stat");
    b.add_ri(Reg::SP, 16);
  });
  EXPECT_EQ(r.exit_code, -1);
}

TEST_F(LibcTest, ReaddirReturnsBufferOnData) {
  auto r = Run([](CodeBuilder& b, LibcTest& t) {
    b.mov_ri(Reg::R2, O_RDONLY);
    b.lea_data(Reg::R1, static_cast<int32_t>(t.path_slot_));
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("open");
    b.add_ri(Reg::SP, 16);
    b.lea_data(Reg::R2, static_cast<int32_t>(t.buf_slot_));
    b.push(Reg::R2);
    b.push(Reg::R0);
    b.call_sym("readdir");
    b.add_ri(Reg::SP, 16);
    // Non-NULL (equals the buffer address): normalize to 1.
    auto null_case = b.new_label();
    b.cmp_ri(Reg::R0, 0);
    b.je(null_case);
    b.mov_ri(Reg::R0, 1);
    b.bind(null_case);
  });
  EXPECT_EQ(r.exit_code, 1);
}

TEST_F(LibcTest, ReaddirBadFdReturnsNull) {
  auto r = Run([](CodeBuilder& b, LibcTest& t) {
    b.mov_ri(Reg::R1, 77);
    b.lea_data(Reg::R2, static_cast<int32_t>(t.buf_slot_));
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("readdir64");
    b.add_ri(Reg::SP, 16);
  });
  EXPECT_EQ(r.exit_code, 0);
}

TEST_F(LibcTest, ExitTerminatesWithCode) {
  auto r = Run([](CodeBuilder& b, LibcTest&) {
    b.mov_ri(Reg::R1, 9);
    b.push(Reg::R1);
    b.call_sym("exit");
    b.add_ri(Reg::SP, 8);
    b.mov_ri(Reg::R0, 1);  // unreachable
  });
  EXPECT_EQ(r.state, vm::ProcState::Exited);
  EXPECT_EQ(r.exit_code, 9);
}

TEST_F(LibcTest, AbortRaisesSigabrt) {
  auto r = Run([](CodeBuilder& b, LibcTest&) { b.call_sym("abort"); });
  EXPECT_EQ(r.state, vm::ProcState::Faulted);
  EXPECT_EQ(r.signal, vm::Signal::Abort);
}

TEST_F(LibcTest, SocketConnectRefused) {
  auto r = Run([](CodeBuilder& b, LibcTest&) {
    b.call_named("socket", {});
    b.mov_rr(Reg::R1, Reg::R0);
    b.mov_ri(Reg::R2, 8080);
    b.push(Reg::R2);
    b.push(Reg::R1);
    b.call_sym("connect");
    b.add_ri(Reg::SP, 16);
    b.call_sym("geterrno");
  });
  EXPECT_EQ(r.exit_code, E_CONNREFUSED);
}

TEST(LibcMeta, PrototypesCoverAllExports) {
  sso::SharedObject so = BuildLibc();
  const auto& protos = LibcPrototypes();
  for (const isa::Symbol& sym : so.exports) {
    EXPECT_TRUE(protos.count(sym.name)) << sym.name;
  }
}

TEST(LibcMeta, FaultloadGroupsExistInLibc) {
  sso::SharedObject so = BuildLibc();
  for (const auto* group :
       {&FileIoFunctions(), &MemoryFunctions(), &SocketFunctions()}) {
    for (const std::string& fn : *group) {
      EXPECT_NE(so.find_export(fn), nullptr) << fn;
    }
  }
}

TEST(LibcMeta, ErrnoLivesAtTlsOffsetZero) {
  sso::SharedObject so = BuildLibc();
  EXPECT_GE(so.tls_size, 8u);
}

}  // namespace
}  // namespace lfi::libc
