// MinimizePlan (replay-based delta debugging) regression tests: the ddmin
// loop is exercised against synthetic oracles where the true minimal
// trigger set is known, so 1-minimality is checked exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/replay.hpp"

namespace lfi::core {
namespace {

Plan MakePlan(size_t triggers) {
  Plan plan;
  plan.seed = 42;
  for (size_t i = 0; i < triggers; ++i) {
    FunctionTrigger t;
    t.function = "fn" + std::to_string(i);
    t.mode = FunctionTrigger::Mode::CallCount;
    t.inject_call = i + 1;
    t.retval = -1;
    t.max_injections = 1;
    plan.triggers.push_back(std::move(t));
  }
  return plan;
}

std::set<std::string> Names(const Plan& plan) {
  std::set<std::string> names;
  for (const FunctionTrigger& t : plan.triggers) names.insert(t.function);
  return names;
}

bool Contains(const Plan& plan, const std::string& name) {
  return std::any_of(plan.triggers.begin(), plan.triggers.end(),
                     [&](const FunctionTrigger& t) {
                       return t.function == name;
                     });
}

// A plan with N triggers where only one causes the crash must shrink to
// exactly that trigger.
TEST(MinimizePlan, SingleCulpritShrinksToOneTrigger) {
  Plan plan = MakePlan(9);
  MinimizeStats stats;
  Plan minimal = MinimizePlan(
      plan, [](const Plan& p) { return Contains(p, "fn5"); }, &stats);
  ASSERT_EQ(minimal.triggers.size(), 1u);
  EXPECT_EQ(minimal.triggers[0].function, "fn5");
  EXPECT_TRUE(stats.reproduced);
  EXPECT_EQ(stats.initial_triggers, 9u);
  EXPECT_EQ(stats.final_triggers, 1u);
  EXPECT_GT(stats.oracle_runs, 0u);
  // The surviving trigger is the original, untouched.
  EXPECT_EQ(minimal.triggers[0].inject_call, 6u);
  EXPECT_EQ(minimal.seed, plan.seed);
}

// A crash needing two cooperating faults must keep both — and nothing
// else.
TEST(MinimizePlan, CooperatingPairKeepsBoth) {
  Plan plan = MakePlan(12);
  auto oracle = [](const Plan& p) {
    return Contains(p, "fn2") && Contains(p, "fn9");
  };
  Plan minimal = MinimizePlan(plan, oracle);
  EXPECT_EQ(Names(minimal), (std::set<std::string>{"fn2", "fn9"}));
  // 1-minimal: removing either remaining trigger breaks reproduction.
  for (size_t drop = 0; drop < minimal.triggers.size(); ++drop) {
    Plan without = minimal;
    without.triggers.erase(without.triggers.begin() +
                           static_cast<long>(drop));
    EXPECT_FALSE(oracle(without)) << "trigger " << drop << " is redundant";
  }
}

// Three scattered cooperating faults — exercises the complement branch.
TEST(MinimizePlan, ThreeCooperatingFaultsSurvive) {
  Plan plan = MakePlan(16);
  auto oracle = [](const Plan& p) {
    return Contains(p, "fn0") && Contains(p, "fn7") && Contains(p, "fn15");
  };
  Plan minimal = MinimizePlan(plan, oracle);
  EXPECT_EQ(Names(minimal), (std::set<std::string>{"fn0", "fn7", "fn15"}));
}

// When the full plan does not reproduce, nothing is shrunk and the plan
// comes back unchanged (the explorer ships the full replay in that case).
TEST(MinimizePlan, NonReproducingPlanReturnedUnchanged) {
  Plan plan = MakePlan(5);
  MinimizeStats stats;
  Plan out = MinimizePlan(
      plan, [](const Plan&) { return false; }, &stats);
  EXPECT_FALSE(stats.reproduced);
  EXPECT_EQ(stats.oracle_runs, 1u);  // only the initial check ran
  EXPECT_EQ(out.ToXml(), plan.ToXml());
}

// Trigger order is preserved: ddmin removes, never reorders.
TEST(MinimizePlan, PreservesTriggerOrder) {
  Plan plan = MakePlan(10);
  Plan minimal = MinimizePlan(plan, [](const Plan& p) {
    return Contains(p, "fn1") && Contains(p, "fn4") && Contains(p, "fn8");
  });
  ASSERT_EQ(minimal.triggers.size(), 3u);
  EXPECT_EQ(minimal.triggers[0].function, "fn1");
  EXPECT_EQ(minimal.triggers[1].function, "fn4");
  EXPECT_EQ(minimal.triggers[2].function, "fn8");
}

// Deterministic: the same plan + oracle minimizes identically every time.
TEST(MinimizePlan, Deterministic) {
  Plan plan = MakePlan(14);
  auto oracle = [](const Plan& p) {
    return Contains(p, "fn3") && Contains(p, "fn11");
  };
  MinimizeStats a_stats, b_stats;
  Plan a = MinimizePlan(plan, oracle, &a_stats);
  Plan b = MinimizePlan(plan, oracle, &b_stats);
  EXPECT_EQ(a.ToXml(), b.ToXml());
  EXPECT_EQ(a_stats.oracle_runs, b_stats.oracle_runs);
}

TEST(MinimizePlan, EmptyPlanIsANoOp) {
  Plan plan;
  MinimizeStats stats;
  Plan out = MinimizePlan(
      plan, [](const Plan&) { return true; }, &stats);
  EXPECT_TRUE(out.triggers.empty());
  EXPECT_TRUE(stats.reproduced);
}

}  // namespace
}  // namespace lfi::core
