#include <gtest/gtest.h>

#include "core/profile.hpp"
#include "util/errno_table.hpp"

namespace lfi::core {
namespace {

FaultProfile Sample() {
  FaultProfile p;
  p.library = "libc.so";
  FunctionProfile close_fn;
  close_fn.name = "close";
  ProfileErrorCode ec;
  ec.retval = -1;
  ProfileSideEffect se;
  se.type = ProfileSideEffect::Type::Tls;
  se.module = "libc.so";
  se.offset = 0;
  se.values = {E_INTR, E_IO, E_BADF};
  ec.side_effects.push_back(se);
  close_fn.error_codes.push_back(ec);
  p.functions.push_back(close_fn);

  FunctionProfile malloc_fn;
  malloc_fn.name = "malloc";
  ProfileErrorCode null_ec;
  null_ec.retval = 0;
  ProfileSideEffect nse;
  nse.type = ProfileSideEffect::Type::Tls;
  nse.module = "libc.so";
  nse.offset = 0;
  nse.values = {E_NOMEM};
  null_ec.side_effects.push_back(nse);
  malloc_fn.error_codes.push_back(null_ec);
  p.functions.push_back(malloc_fn);

  FunctionProfile plain;
  plain.name = "getpid";
  p.functions.push_back(plain);
  return p;
}

TEST(FaultProfile, XmlRoundTrip) {
  FaultProfile p = Sample();
  auto parsed = FaultProfile::FromXml(p.ToXml());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const FaultProfile& q = parsed.value();
  EXPECT_EQ(q.library, "libc.so");
  ASSERT_EQ(q.functions.size(), 3u);
  const FunctionProfile* close_fn = q.function("close");
  ASSERT_NE(close_fn, nullptr);
  ASSERT_EQ(close_fn->error_codes.size(), 1u);
  EXPECT_EQ(close_fn->error_codes[0].retval, -1);
  ASSERT_EQ(close_fn->error_codes[0].side_effects.size(), 1u);
  EXPECT_EQ(close_fn->error_codes[0].side_effects[0].values,
            (std::vector<int64_t>{E_INTR, E_IO, E_BADF}));
}

TEST(FaultProfile, XmlShapeMatchesPaper) {
  std::string xml = Sample().ToXml();
  EXPECT_NE(xml.find("<profile"), std::string::npos);
  EXPECT_NE(xml.find("<function name=\"close\">"), std::string::npos);
  EXPECT_NE(xml.find("<error-codes retval=\"-1\">"), std::string::npos);
  EXPECT_NE(xml.find("side-effect type=\"TLS\""), std::string::npos);
  // One element per side-effect value, like the paper's sample.
  size_t count = 0;
  for (size_t at = 0; (at = xml.find("<side-effect", at)) != std::string::npos;
       ++at) {
    ++count;
  }
  EXPECT_EQ(count, 4u);  // 3 for close + 1 for malloc
}

TEST(FaultProfile, ParsePaperStyleSnippet) {
  auto parsed = FaultProfile::FromXml(R"(
    <profile library="libc.so.6">
      <function name="close">
        <error-codes retval="-1">
          <side-effect type="TLS" module="libc.so.6" offset="1245172">9</side-effect>
          <side-effect type="TLS" module="libc.so.6" offset="1245172">5</side-effect>
          <side-effect type="TLS" module="libc.so.6" offset="1245172">4</side-effect>
        </error-codes>
      </function>
    </profile>)");
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const FunctionProfile* fn = parsed.value().function("close");
  ASSERT_NE(fn, nullptr);
  // Same-location elements merge into one effect with three values.
  ASSERT_EQ(fn->error_codes[0].side_effects.size(), 1u);
  EXPECT_EQ(fn->error_codes[0].side_effects[0].values.size(), 3u);
}

TEST(FaultProfile, ArgSideEffectRoundTrip) {
  FaultProfile p;
  p.library = "x.so";
  FunctionProfile fn;
  fn.name = "f";
  ProfileErrorCode ec;
  ec.retval = -1;
  ProfileSideEffect se;
  se.type = ProfileSideEffect::Type::Arg;
  se.arg_index = 2;
  se.values = {7};
  ec.side_effects.push_back(se);
  fn.error_codes.push_back(ec);
  p.functions.push_back(fn);

  auto parsed = FaultProfile::FromXml(p.ToXml());
  ASSERT_TRUE(parsed.ok());
  const auto& q = parsed.value().functions[0].error_codes[0].side_effects[0];
  EXPECT_EQ(q.type, ProfileSideEffect::Type::Arg);
  EXPECT_EQ(q.arg_index, 2);
}

TEST(FaultProfile, IncompleteFlagRoundTrip) {
  FaultProfile p;
  p.library = "x.so";
  FunctionProfile fn;
  fn.name = "f";
  fn.incomplete = true;
  p.functions.push_back(fn);
  auto parsed = FaultProfile::FromXml(p.ToXml());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().functions[0].incomplete);
}

TEST(FaultProfile, InjectablesFlattenTlsValues) {
  FaultProfile p = Sample();
  auto pairs = p.function("close")->injectables();
  ASSERT_EQ(pairs.size(), 3u);
  for (const auto& [retval, err] : pairs) {
    EXPECT_EQ(retval, -1);
    ASSERT_TRUE(err.has_value());
  }
}

TEST(FaultProfile, InjectablesWithoutEffects) {
  FunctionProfile fn;
  fn.name = "f";
  ProfileErrorCode ec;
  ec.retval = -2;
  fn.error_codes.push_back(ec);
  auto pairs = fn.injectables();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first, -2);
  EXPECT_FALSE(pairs[0].second.has_value());
}

TEST(FaultProfile, RejectsBadXml) {
  EXPECT_FALSE(FaultProfile::FromXml("<notprofile />").ok());
  EXPECT_FALSE(FaultProfile::FromXml("<profile><function /></profile>").ok());
  EXPECT_FALSE(FaultProfile::FromXml(
                   "<profile><function name=\"f\"><error-codes /></function>"
                   "</profile>")
                   .ok());
  EXPECT_FALSE(FaultProfile::FromXml("garbage").ok());
}

TEST(FaultProfile, FunctionLookup) {
  FaultProfile p = Sample();
  EXPECT_NE(p.function("close"), nullptr);
  EXPECT_EQ(p.function("nope"), nullptr);
  EXPECT_NE(p.function("close")->error_code(-1), nullptr);
  EXPECT_EQ(p.function("close")->error_code(0), nullptr);
}

TEST(FaultProfile, ProvenanceXmlRoundTrip) {
  FaultProfile p = Sample();
  p.functions[0].error_codes[0].provenance = Provenance::Analyzed;
  // functions[1] stays Assumed — its error-code element must carry no
  // provenance attribute (hand-written profiles stay valid unchanged).
  std::string xml = p.ToXml();
  EXPECT_NE(xml.find("provenance=\"analyzed\""), std::string::npos);
  EXPECT_EQ(xml.find("provenance=\"assumed\""), std::string::npos);

  auto parsed = FaultProfile::FromXml(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const FaultProfile& q = parsed.value();
  EXPECT_EQ(q.functions[0].error_codes[0].provenance, Provenance::Analyzed);
  EXPECT_EQ(q.functions[1].error_codes[0].provenance, Provenance::Assumed);
  EXPECT_TRUE(q.functions[0].has_analyzed_codes());
  EXPECT_FALSE(q.functions[1].has_analyzed_codes());
}

TEST(FaultProfile, ProvenanceRejectsUnknownValue) {
  EXPECT_FALSE(FaultProfile::FromXml(
                   "<profile library=\"l\"><function name=\"f\">"
                   "<error-codes retval=\"-1\" provenance=\"guessed\" />"
                   "</function></profile>")
                   .ok());
}

TEST(FaultProfile, FeasibleOnlyInjectablesRestrictToAnalyzed) {
  FunctionProfile fn;
  fn.name = "f";
  ProfileErrorCode analyzed;
  analyzed.retval = -1;
  analyzed.provenance = Provenance::Analyzed;
  ProfileErrorCode assumed;
  assumed.retval = -2;  // documentation-derived; constprop never saw it
  fn.error_codes.push_back(analyzed);
  fn.error_codes.push_back(assumed);

  auto all = fn.injectables();
  ASSERT_EQ(all.size(), 2u);
  auto feasible = fn.injectables(/*feasible_only=*/true);
  ASSERT_EQ(feasible.size(), 1u);
  EXPECT_EQ(feasible[0].first, -1);
}

TEST(FaultProfile, FeasibleOnlyFallsBackForUnanalyzedFunctions) {
  // A function with no Analyzed code at all keeps its full set — the
  // gate only trims functions the analysis actually reached.
  FunctionProfile fn;
  fn.name = "g";
  ProfileErrorCode a, b;
  a.retval = -1;
  b.retval = -2;
  fn.error_codes.push_back(a);
  fn.error_codes.push_back(b);
  EXPECT_FALSE(fn.has_analyzed_codes());
  EXPECT_EQ(fn.injectables(/*feasible_only=*/true).size(), 2u);
}

}  // namespace
}  // namespace lfi::core
