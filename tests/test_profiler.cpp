#include <gtest/gtest.h>

#include "apps/webserver.hpp"
#include "core/profiler.hpp"
#include "kernel/kernel_image.hpp"
#include "libc/libc_builder.hpp"
#include "util/errno_table.hpp"

namespace lfi::core {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest() {
    ws_.SetKernel(&kernel_);
    ws_.AddModule(&libc_);
  }

  static inline const sso::SharedObject kernel_ = kernel::BuildKernelImage();
  static inline const sso::SharedObject libc_ = libc::BuildLibc();
  analysis::Workspace ws_;
};

TEST_F(ProfilerTest, CloseProfileMatchesPaperSection33) {
  Profiler profiler(ws_);
  auto profile = profiler.ProfileLibrary(libc_);
  ASSERT_TRUE(profile.ok()) << profile.error();
  const FunctionProfile* close_fn = profile.value().function("close");
  ASSERT_NE(close_fn, nullptr);
  ASSERT_EQ(close_fn->error_codes.size(), 1u);
  EXPECT_EQ(close_fn->error_codes[0].retval, -1);
  std::set<int64_t> errnos;
  for (const auto& se : close_fn->error_codes[0].side_effects) {
    if (se.type == ProfileSideEffect::Type::Tls) {
      errnos.insert(se.values.begin(), se.values.end());
    }
  }
  EXPECT_EQ(errnos, (std::set<int64_t>{E_BADF, E_IO, E_INTR}));
}

TEST_F(ProfilerTest, ReadProfileHasFourErrnos) {
  Profiler profiler(ws_);
  auto profile = profiler.ProfileLibrary(libc_);
  ASSERT_TRUE(profile.ok());
  const FunctionProfile* read_fn = profile.value().function("read");
  ASSERT_NE(read_fn, nullptr);
  auto pairs = read_fn->injectables();
  std::set<int64_t> errnos;
  for (const auto& [rv, err] : pairs) {
    EXPECT_EQ(rv, -1);
    if (err) errnos.insert(*err);
  }
  EXPECT_EQ(errnos, (std::set<int64_t>{E_BADF, E_IO, E_INTR, E_AGAIN}));
}

TEST_F(ProfilerTest, MallocReturnsNullWithENOMEM) {
  Profiler profiler(ws_);
  auto profile = profiler.ProfileLibrary(libc_);
  ASSERT_TRUE(profile.ok());
  const FunctionProfile* malloc_fn = profile.value().function("malloc");
  ASSERT_NE(malloc_fn, nullptr);
  ASSERT_EQ(malloc_fn->error_codes.size(), 1u);
  EXPECT_EQ(malloc_fn->error_codes[0].retval, 0);  // NULL
  auto pairs = malloc_fn->injectables();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].second, E_NOMEM);
}

TEST_F(ProfilerTest, CallocInheritsMallocProfile) {
  // Dependent-function recursion through an exported sibling (§3.1).
  Profiler profiler(ws_);
  auto profile = profiler.ProfileLibrary(libc_);
  ASSERT_TRUE(profile.ok());
  const FunctionProfile* calloc_fn = profile.value().function("calloc");
  ASSERT_NE(calloc_fn, nullptr);
  ASSERT_FALSE(calloc_fn->error_codes.empty());
  EXPECT_EQ(calloc_fn->error_codes[0].retval, 0);
}

TEST_F(ProfilerTest, ReaddirReturnsNullViaDependentRead) {
  Profiler profiler(ws_);
  auto profile = profiler.ProfileLibrary(libc_);
  ASSERT_TRUE(profile.ok());
  const FunctionProfile* rd = profile.value().function("readdir");
  ASSERT_NE(rd, nullptr);
  bool has_null = false;
  for (const auto& ec : rd->error_codes) has_null |= ec.retval == 0;
  EXPECT_TRUE(has_null);
}

TEST_F(ProfilerTest, GetpidHasNoErrorCodes) {
  Profiler profiler(ws_);
  auto profile = profiler.ProfileLibrary(libc_);
  ASSERT_TRUE(profile.ok());
  const FunctionProfile* fn = profile.value().function("getpid");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->error_codes.empty());
}

TEST_F(ProfilerTest, ProfilesEveryExport) {
  Profiler profiler(ws_);
  auto profile = profiler.ProfileLibrary(libc_);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().functions.size(), libc_.exports.size());
  EXPECT_EQ(profiler.stats().functions_profiled, libc_.exports.size());
}

TEST_F(ProfilerTest, WorksOnStrippedLibrary) {
  sso::SharedObject stripped = libc_;
  stripped.Strip();
  analysis::Workspace ws;
  ws.SetKernel(&kernel_);
  ws.AddModule(&stripped);
  Profiler profiler(ws);
  auto profile = profiler.ProfileLibrary(stripped);
  ASSERT_TRUE(profile.ok()) << profile.error();
  const FunctionProfile* close_fn = profile.value().function("close");
  ASSERT_NE(close_fn, nullptr);
  EXPECT_FALSE(close_fn->error_codes.empty());
}

TEST_F(ProfilerTest, HopsStayWithinPaperBound) {
  Profiler profiler(ws_);
  ASSERT_TRUE(profiler.ProfileLibrary(libc_).ok());
  // §6.2: "we have found this number to be always 3 or less" for direct
  // propagation; dependent calls add one hop per call level, and readdir
  // stacks read -> syscall -> kernel, so allow a modest bound.
  EXPECT_LE(profiler.stats().max_hops, 8);
}

TEST_F(ProfilerTest, ApplicationProfilingWalksNeededClosure) {
  // webserver.so needs libc + libapr + libaprutil; apr libs need libc.
  sso::SharedObject apr = apps::BuildLibApr();
  sso::SharedObject aprutil = apps::BuildLibAprUtil();
  sso::SharedObject web = apps::BuildWebServer(1, false);
  analysis::Workspace ws;
  ws.SetKernel(&kernel_);
  ws.AddModule(&libc_);
  ws.AddModule(&apr);
  ws.AddModule(&aprutil);
  ws.AddModule(&web);
  Profiler profiler(ws);
  auto profiles = profiler.ProfileApplication(web);
  ASSERT_TRUE(profiles.ok()) << profiles.error();
  std::set<std::string> names;
  for (const auto& p : profiles.value()) names.insert(p.library);
  EXPECT_EQ(names, (std::set<std::string>{"libc.so", "libapr.so",
                                          "libaprutil.so"}));
}

TEST_F(ProfilerTest, CrossLibraryDependentProfile) {
  // apr_file_close wraps libc close: it must inherit -1 + EBADF/EIO/EINTR.
  sso::SharedObject apr = apps::BuildLibApr();
  analysis::Workspace ws;
  ws.SetKernel(&kernel_);
  ws.AddModule(&libc_);
  ws.AddModule(&apr);
  Profiler profiler(ws);
  auto profile = profiler.ProfileLibrary(apr);
  ASSERT_TRUE(profile.ok()) << profile.error();
  const FunctionProfile* fn = profile.value().function("apr_file_close");
  ASSERT_NE(fn, nullptr);
  ASSERT_FALSE(fn->error_codes.empty());
  EXPECT_EQ(fn->error_codes[0].retval, -1);
  std::set<int64_t> errnos;
  for (const auto& se : fn->error_codes[0].side_effects) {
    errnos.insert(se.values.begin(), se.values.end());
  }
  EXPECT_TRUE(errnos.count(E_BADF));
  EXPECT_TRUE(errnos.count(E_IO));
}

TEST_F(ProfilerTest, HeuristicOptionsPropagate) {
  ProfilerOptions opts;
  opts.heuristics.drop_success_zero = true;
  Profiler profiler(ws_, opts);
  auto profile = profiler.ProfileLibrary(libc_);
  ASSERT_TRUE(profile.ok());
  // malloc's lone 0 survives the zero-dropping heuristic (NULL pointer).
  const FunctionProfile* malloc_fn = profile.value().function("malloc");
  ASSERT_NE(malloc_fn, nullptr);
  EXPECT_FALSE(malloc_fn->error_codes.empty());
}

TEST_F(ProfilerTest, ProfileXmlRoundTripsEndToEnd) {
  Profiler profiler(ws_);
  auto profile = profiler.ProfileLibrary(libc_);
  ASSERT_TRUE(profile.ok());
  auto parsed = FaultProfile::FromXml(profile.value().ToXml());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().functions.size(),
            profile.value().functions.size());
}

TEST_F(ProfilerTest, StatsAccumulate) {
  Profiler profiler(ws_);
  ASSERT_TRUE(profiler.ProfileLibrary(libc_).ok());
  const ProfilerStats& stats = profiler.stats();
  EXPECT_EQ(stats.libraries_profiled, 1u);
  EXPECT_GT(stats.states_explored, 0u);
  EXPECT_GT(stats.total_time.count(), 0);
}

}  // namespace
}  // namespace lfi::core
