// Property-based and sweep tests across module boundaries:
//   - profiler completeness on randomly generated direct-constant libraries
//   - runtime ground truth: generated binaries return what the profiler says
//   - full Table-2 sweep (all 18 libraries score exactly)
//   - end-to-end determinism of injection runs
#include <gtest/gtest.h>

#include "apps/workloads.hpp"
#include "core/controller.hpp"
#include "core/profiler.hpp"
#include "core/scenario_gen.hpp"
#include "corpus/table2_corpus.hpp"
#include "kernel/kernel_image.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace lfi {
namespace {

// ---- profiler completeness on random direct-constant libraries ----------------

class ProfilerCompleteness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProfilerCompleteness, FindsExactlyTheGeneratedCodes) {
  // Libraries with only detectable codes: the profiler must find exactly
  // the actual set — no false negatives, no false positives.
  Rng rng(GetParam());
  corpus::LibrarySpec spec;
  spec.name = "librand.so";
  spec.seed = GetParam() * 31 + 7;
  int functions = 3 + static_cast<int>(rng.below(10));
  for (int i = 0; i < functions; ++i) {
    corpus::FunctionSpec fn;
    fn.name = "f" + std::to_string(i);
    fn.arg_count = 1 + static_cast<int>(rng.below(3));
    fn.filler_blocks = static_cast<int>(rng.below(5));
    std::set<int64_t> used;
    int codes = static_cast<int>(rng.below(5));
    for (int c = 0; c < codes; ++c) {
      int64_t v;
      do {
        v = -static_cast<int64_t>(1 + rng.below(100));
      } while (used.count(v));
      used.insert(v);
      fn.detectable_documented.push_back(v);
    }
    spec.functions.push_back(fn);
  }
  corpus::GeneratedLibrary lib = corpus::GenerateLibrary(spec);

  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  analysis::Workspace ws;
  ws.SetKernel(&kernel);
  ws.AddModule(&lib.object);
  core::Profiler profiler(ws);
  auto profile = profiler.ProfileLibrary(lib.object);
  ASSERT_TRUE(profile.ok()) << profile.error();
  for (const auto& fn : profile.value().functions) {
    std::set<int64_t> found;
    for (const auto& ec : fn.error_codes) found.insert(ec.retval);
    EXPECT_EQ(found, lib.actual.at(fn.name)) << fn.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfilerCompleteness,
                         ::testing::Range<uint64_t>(1, 26));

// ---- runtime ground truth -------------------------------------------------------

class RuntimeGroundTruth : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RuntimeGroundTruth, ProfiledCodesAreActuallyReturnable) {
  // For every profiled code of a generated function, there is a selector
  // argument under which the function really returns it in the VM.
  Rng rng(GetParam() * 977);
  corpus::LibrarySpec spec;
  spec.name = "libgt.so";
  spec.seed = GetParam();
  corpus::FunctionSpec fn;
  fn.name = "target";
  fn.arg_count = 1;
  std::set<int64_t> used;
  int codes = 1 + static_cast<int>(rng.below(4));
  for (int c = 0; c < codes; ++c) {
    int64_t v;
    do {
      v = -static_cast<int64_t>(1 + rng.below(60));
    } while (used.count(v));
    used.insert(v);
    fn.detectable_documented.push_back(v);
  }
  spec.functions.push_back(fn);
  corpus::GeneratedLibrary lib = corpus::GenerateLibrary(spec);

  // Call target(sel) for sel = 1..codes and collect returns.
  std::set<int64_t> returned;
  for (int sel = 1; sel <= codes; ++sel) {
    isa::CodeBuilder b;
    b.begin_function("main");
    b.mov_ri(isa::Reg::R1, sel);
    b.call_named("target", {isa::Reg::R1});
    b.leave_ret();
    b.end_function();
    vm::Machine machine;
    machine.Load(lib.object);
    machine.Load(sso::FromCodeUnit("main.so", b.Finish(), {"libgt.so"}));
    auto r = test::RunEntry(machine, "main");
    ASSERT_EQ(r.state, vm::ProcState::Exited) << r.fault;
    returned.insert(r.exit_code);
  }
  EXPECT_EQ(returned, lib.actual.at("target"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeGroundTruth,
                         ::testing::Range<uint64_t>(1, 16));

// ---- Table 2 sweep ---------------------------------------------------------------

class Table2Sweep : public ::testing::TestWithParam<size_t> {};

TEST_P(Table2Sweep, MeasuredCountsMatchPaperExactly) {
  const corpus::Table2Entry& entry =
      corpus::Table2Reference()[GetParam()];
  corpus::GeneratedLibrary lib =
      corpus::GenerateTable2Library(entry, 42 + GetParam());
  static const sso::SharedObject kernel = kernel::BuildKernelImage();
  analysis::Workspace ws;
  ws.SetKernel(&kernel);
  ws.AddModule(&lib.object);
  core::Profiler profiler(ws);
  auto profile = profiler.ProfileLibrary(lib.object);
  ASSERT_TRUE(profile.ok()) << profile.error();
  std::map<std::string, std::set<int64_t>> found;
  for (const auto& fn : profile.value().functions) {
    for (const auto& ec : fn.error_codes) found[fn.name].insert(ec.retval);
  }
  corpus::AccuracyCount score =
      corpus::ScoreAgainstDocs(lib.documentation, found);
  EXPECT_EQ(score.tp, entry.paper_tp) << entry.library;
  EXPECT_EQ(score.fn, entry.paper_fn) << entry.library;
  EXPECT_EQ(score.fp, entry.paper_fp) << entry.library;
  EXPECT_NEAR(score.accuracy() * 100, entry.paper_accuracy_pct, 1.6)
      << entry.library;
}

INSTANTIATE_TEST_SUITE_P(AllLibraries, Table2Sweep,
                         ::testing::Range<size_t>(0, 18));

// ---- end-to-end determinism -------------------------------------------------------

class InjectionDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InjectionDeterminism, SameSeedSameLogSameOutcome) {
  auto run = [&] {
    std::vector<core::FaultProfile> profiles =
        apps::ProfileStandardLibs({libc::BuildLibc()});
    core::Plan plan = core::GenerateRandom(profiles, 0.2, GetParam());
    apps::PidginRunResult r = apps::RunPidginWithPlan(plan);
    return std::make_tuple(r.aborted, r.exit_code, r.injections,
                           r.replay.ToXml());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InjectionDeterminism,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---- scheduler interaction ----------------------------------------------------------

TEST(SpawnAndWait, ParentReapsChildExitCode) {
  isa::CodeBuilder b;
  uint32_t name = 0;
  {
    std::vector<uint8_t> s;
    for (const char* p = "child_main"; *p; ++p) s.push_back(uint8_t(*p));
    s.push_back(0);
    name = b.emit_data(s);
  }
  b.begin_function("child_main");
  b.mov_ri(isa::Reg::R1, 77);
  b.push(isa::Reg::R1);
  b.call_sym("exit");
  b.add_ri(isa::Reg::SP, 8);
  b.leave_ret();
  b.end_function();
  b.begin_function("main");
  b.lea_data(isa::Reg::R1, static_cast<int32_t>(name));
  b.push(isa::Reg::R1);
  b.call_sym("spawn");
  b.add_ri(isa::Reg::SP, 8);
  b.mov_rr(isa::Reg::R1, isa::Reg::R0);  // child pid
  b.push(isa::Reg::R1);
  b.call_sym("waitpid");
  b.add_ri(isa::Reg::SP, 8);
  b.leave_ret();
  b.end_function();

  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(sso::FromCodeUnit("app.so", b.Finish(), {"libc.so"}));
  auto r = test::RunEntry(machine, "main");
  ASSERT_EQ(r.state, vm::ProcState::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, 77);  // wait() returned the child's exit code
}

TEST(SpawnAndWait, InjectedSpawnFailureVisible) {
  isa::CodeBuilder b;
  uint32_t name = 0;
  {
    std::vector<uint8_t> s = {'x', 0};
    name = b.emit_data(s);
  }
  b.begin_function("main");
  b.lea_data(isa::Reg::R1, static_cast<int32_t>(name));
  b.push(isa::Reg::R1);
  b.call_sym("spawn");
  b.add_ri(isa::Reg::SP, 8);
  b.leave_ret();
  b.end_function();

  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(sso::FromCodeUnit("app.so", b.Finish(), {"libc.so"}));
  core::Controller controller(machine);
  core::Plan plan;
  core::FunctionTrigger t;
  t.function = "spawn";
  t.mode = core::FunctionTrigger::Mode::CallCount;
  t.inject_call = 1;
  t.retval = -1;
  t.errno_value = E_AGAIN;
  plan.triggers.push_back(t);
  ASSERT_TRUE(controller.Install(plan, nullptr));
  auto r = test::RunEntry(machine, "main");
  EXPECT_EQ(r.exit_code, -1);
  // No child was actually created.
  EXPECT_EQ(machine.processes().size(), 1u);
}

// ---- exhaustive scenario at application level ---------------------------------------

TEST(ExhaustiveScenario, RotatesThroughAllCloseErrnos) {
  // An app that calls close(5) three times and sums the errnos it sees:
  // under the exhaustive scenario, consecutive calls must iterate EBADF,
  // EIO, EINTR (in profile order).
  isa::CodeBuilder b;
  b.begin_function("main");
  b.sub_ri(isa::Reg::SP, 16);
  b.store_i(isa::Reg::BP, -8, 0);
  for (int i = 0; i < 3; ++i) {
    b.mov_ri(isa::Reg::R1, 5);
    b.push(isa::Reg::R1);
    b.call_sym("close");
    b.add_ri(isa::Reg::SP, 8);
    b.call_sym("geterrno");
    b.load(isa::Reg::R1, isa::Reg::BP, -8);
    b.add_rr(isa::Reg::R1, isa::Reg::R0);
    b.store(isa::Reg::BP, -8, isa::Reg::R1);
  }
  b.load(isa::Reg::R0, isa::Reg::BP, -8);
  b.leave_ret();
  b.end_function();

  std::vector<core::FaultProfile> profiles =
      apps::ProfileStandardLibs({libc::BuildLibc()});
  core::Plan plan = core::GenerateExhaustive(profiles);
  // Restrict to close so geterrno isn't intercepted.
  plan.triggers.erase(
      std::remove_if(plan.triggers.begin(), plan.triggers.end(),
                     [](const core::FunctionTrigger& t) {
                       return t.function != "close";
                     }),
      plan.triggers.end());

  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(sso::FromCodeUnit("app.so", b.Finish(), {"libc.so"}));
  core::Controller controller(machine);
  ASSERT_TRUE(controller.Install(plan, profiles));
  auto r = test::RunEntry(machine, "main");
  ASSERT_EQ(r.state, vm::ProcState::Exited) << r.fault;
  EXPECT_EQ(r.exit_code, E_BADF + E_IO + E_INTR);  // all three, once each
}

}  // namespace
}  // namespace lfi
