#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "core/scenario_gen.hpp"
#include "core/faultloads.hpp"
#include "core/profiler.hpp"
#include "kernel/kernel_image.hpp"
#include "libc/libc_builder.hpp"
#include "util/errno_table.hpp"

namespace lfi::core {
namespace {

// The paper's §4 example plan, verbatim in structure.
constexpr const char* kPaperPlan = R"(
<plan>
  <function name="readdir64" inject="5" retval="0"
            errno="EBADF" calloriginal="false" />
  <function name="readdir" inject="5" retval="0"
            errno="EBADF" calloriginal="false">
    <stacktrace>
      <frame>0xb824490</frame>
      <frame>refresh_files</frame>
    </stacktrace>
  </function>
  <function name="read" inject="20" calloriginal="true">
    <modify argument="3" op="sub" value="10" />
  </function>
</plan>)";

TEST(Scenario, ParsesPaperExample) {
  auto plan = Plan::FromXml(kPaperPlan);
  ASSERT_TRUE(plan.ok()) << plan.error();
  ASSERT_EQ(plan.value().triggers.size(), 3u);

  const FunctionTrigger& t0 = plan.value().triggers[0];
  EXPECT_EQ(t0.function, "readdir64");
  EXPECT_EQ(t0.mode, FunctionTrigger::Mode::CallCount);
  EXPECT_EQ(t0.inject_call, 5u);
  EXPECT_EQ(t0.retval, 0);
  EXPECT_EQ(t0.errno_value, E_BADF);
  EXPECT_FALSE(t0.call_original);

  const FunctionTrigger& t1 = plan.value().triggers[1];
  ASSERT_EQ(t1.stacktrace.size(), 2u);
  EXPECT_EQ(t1.stacktrace[0].address, 0xb824490u);
  EXPECT_EQ(t1.stacktrace[1].symbol, "refresh_files");

  const FunctionTrigger& t2 = plan.value().triggers[2];
  EXPECT_TRUE(t2.call_original);
  EXPECT_FALSE(t2.retval.has_value());
  ASSERT_EQ(t2.modifications.size(), 1u);
  EXPECT_EQ(t2.modifications[0].argument, 3);
  EXPECT_EQ(t2.modifications[0].op, ArgModification::Op::Sub);
  EXPECT_EQ(t2.modifications[0].value, 10);
}

TEST(Scenario, XmlRoundTrip) {
  auto plan = Plan::FromXml(kPaperPlan);
  ASSERT_TRUE(plan.ok());
  auto again = Plan::FromXml(plan.value().ToXml());
  ASSERT_TRUE(again.ok()) << again.error();
  ASSERT_EQ(again.value().triggers.size(), 3u);
  EXPECT_EQ(again.value().triggers[1].stacktrace[1].symbol, "refresh_files");
  EXPECT_EQ(again.value().triggers[2].modifications[0].op,
            ArgModification::Op::Sub);
}

TEST(Scenario, ProbabilitySurvivesXmlRoundTripExactly) {
  // ToXml prints probabilities with %.17g — enough digits that strtod
  // recovers the exact IEEE-754 double. The old %g (6 significant digits)
  // truncated explorer-mutated probabilities, so a plan saved to a corpus
  // and reloaded was *almost* the plan that ran.
  for (double p : {0.12345678901234567, 1.0 / 3.0, 0.1 + 0.2, 1e-9,
                   0.9999999999999999}) {
    Plan plan;
    FunctionTrigger t;
    t.function = "read";
    t.mode = FunctionTrigger::Mode::Probability;
    t.probability = p;
    plan.triggers.push_back(t);
    auto parsed = Plan::FromXml(plan.ToXml());
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    ASSERT_EQ(parsed.value().triggers.size(), 1u);
    // Bit-exact, not approximately equal — memcmp-level identity.
    EXPECT_EQ(parsed.value().triggers[0].probability, p);
    // And a fixpoint: re-serializing the parsed plan changes nothing.
    EXPECT_EQ(parsed.value().ToXml(), plan.ToXml());
  }
}

TEST(Scenario, StackTraceConditionsSurviveXmlRoundTrip) {
  // A plan built in memory (not parsed from the paper example) with mixed
  // address / symbol frame conditions must serialize and parse back to the
  // same trigger, frame for frame.
  Plan plan;
  plan.seed = 77;
  FunctionTrigger t;
  t.function = "readdir";
  t.mode = FunctionTrigger::Mode::CallCount;
  t.inject_call = 5;
  t.retval = 0;
  t.errno_value = E_BADF;
  t.max_injections = 2;
  FrameCondition addr_frame;
  addr_frame.address = 0xb824490;
  FrameCondition sym_frame;
  sym_frame.symbol = "refresh_files";
  FrameCondition outer_frame;
  outer_frame.symbol = "main";
  t.stacktrace = {addr_frame, sym_frame, outer_frame};
  plan.triggers.push_back(t);

  auto parsed = Plan::FromXml(plan.ToXml());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().triggers.size(), 1u);
  const FunctionTrigger& back = parsed.value().triggers[0];
  EXPECT_EQ(parsed.value().seed, 77u);
  EXPECT_EQ(back.function, "readdir");
  EXPECT_EQ(back.mode, FunctionTrigger::Mode::CallCount);
  EXPECT_EQ(back.inject_call, 5u);
  EXPECT_EQ(back.retval, 0);
  EXPECT_EQ(back.errno_value, E_BADF);
  EXPECT_EQ(back.max_injections, 2);
  ASSERT_EQ(back.stacktrace.size(), 3u);
  ASSERT_TRUE(back.stacktrace[0].address.has_value());
  EXPECT_EQ(*back.stacktrace[0].address, 0xb824490u);
  EXPECT_TRUE(back.stacktrace[0].symbol.empty());
  EXPECT_FALSE(back.stacktrace[1].address.has_value());
  EXPECT_EQ(back.stacktrace[1].symbol, "refresh_files");
  EXPECT_EQ(back.stacktrace[2].symbol, "main");
  // And the round-trip is a fixpoint: serializing again changes nothing.
  EXPECT_EQ(parsed.value().ToXml(), plan.ToXml());
}

TEST(Scenario, ProbabilityTriggerParses) {
  auto plan = Plan::FromXml(
      R"(<plan seed="7"><function name="read" probability="0.1" /></plan>)");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().seed, 7u);
  EXPECT_EQ(plan.value().triggers[0].mode, FunctionTrigger::Mode::Probability);
  EXPECT_DOUBLE_EQ(plan.value().triggers[0].probability, 0.1);
}

TEST(Scenario, RotateModeParses) {
  auto plan = Plan::FromXml(
      R"(<plan><function name="close" mode="rotate" /></plan>)");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().triggers[0].mode, FunctionTrigger::Mode::Rotate);
}

TEST(Scenario, NumericErrnoAccepted) {
  auto plan = Plan::FromXml(
      R"(<plan><function name="f" inject="1" retval="-1" errno="9" /></plan>)");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().triggers[0].errno_value, 9);
}

TEST(Scenario, RejectsMalformedPlans) {
  EXPECT_FALSE(Plan::FromXml("<plan><function /></plan>").ok());
  EXPECT_FALSE(
      Plan::FromXml("<plan><function name=\"f\" mode=\"bogus\" /></plan>").ok());
  EXPECT_FALSE(Plan::FromXml(
                   "<plan><function name=\"f\" inject=\"1\" errno=\"EBOGUS\" "
                   "/></plan>")
                   .ok());
  EXPECT_FALSE(
      Plan::FromXml("<plan><function name=\"f\" inject=\"1\">"
                    "<modify argument=\"0\" op=\"set\" value=\"1\" />"
                    "</function></plan>")
          .ok());
  EXPECT_FALSE(Plan::FromXml("<notaplan />").ok());
}

// std::atof silently parsed garbage as 0.0 (a trigger that never fires)
// and was locale-dependent; the parser must reject instead.
TEST(Scenario, ProbabilityValidation) {
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" probability="zero.five" /></plan>)").ok());
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" probability="0.5x" /></plan>)").ok());
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" probability="1.5" /></plan>)").ok());
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" probability="-0.1" /></plan>)").ok());
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" probability="nan" /></plan>)").ok());
  auto plan = Plan::FromXml(
      R"(<plan><function name="f" probability="1e-3" /></plan>)");
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_DOUBLE_EQ(plan.value().triggers[0].probability, 1e-3);
}

TEST(Scenario, SeedValidation) {
  EXPECT_FALSE(Plan::FromXml(R"(<plan seed="-5" />)").ok());
  EXPECT_FALSE(Plan::FromXml(R"(<plan seed="lots" />)").ok());
  // The full uint64 range is a valid seed (no int64 wrap on the way).
  auto plan = Plan::FromXml(R"(<plan seed="18446744073709551615" />)");
  ASSERT_TRUE(plan.ok()) << plan.error();
  EXPECT_EQ(plan.value().seed, UINT64_MAX);
}

TEST(Scenario, InjectValidation) {
  // Call counts are 1-based: inject="0" can never fire and is a plan bug.
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="0" /></plan>)").ok());
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="-3" /></plan>)").ok());
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="soon" /></plan>)").ok());
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="99999999999999999999" /></plan>)").ok());
}

TEST(Scenario, RetvalAndMaxInjectionsRanges) {
  // Out-of-int64 retvals used to wrap via static_cast; now malformed.
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="1" retval="9223372036854775808" /></plan>)").ok());
  auto min_rv = Plan::FromXml(
      R"(<plan><function name="f" inject="1" retval="-9223372036854775808" /></plan>)");
  ASSERT_TRUE(min_rv.ok()) << min_rv.error();
  EXPECT_EQ(min_rv.value().triggers[0].retval, INT64_MIN);
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="1" maxinjections="-2" /></plan>)").ok());
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="1" maxinjections="never" /></plan>)").ok());
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="1" maxinjections="3000000000" /></plan>)").ok());
  auto unlimited = Plan::FromXml(
      R"(<plan><function name="f" inject="1" maxinjections="-1" /></plan>)");
  ASSERT_TRUE(unlimited.ok());
  EXPECT_EQ(unlimited.value().triggers[0].max_injections, -1);
}

TEST(Scenario, CallOriginalAndModifyValidation) {
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="1" calloriginal="maybe" /></plan>)").ok());
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="1">)"
      R"(<modify argument="2" op="set" value="junk" /></function></plan>)").ok());
  // An argument index above the cap used to wrap through the int cast.
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="1">)"
      R"(<modify argument="4294967297" op="set" value="1" /></function></plan>)").ok());
  EXPECT_FALSE(Plan::FromXml(
      R"(<plan><function name="f" inject="1">)"
      R"(<modify argument="300" op="set" value="1" /></function></plan>)").ok());
}

// Extreme-but-valid values survive a ToXml -> FromXml -> ToXml round trip
// byte-identically (what the explorer's persisted corpus depends on).
TEST(Scenario, ExtremeValuesRoundTrip) {
  Plan plan;
  plan.seed = UINT64_MAX;
  FunctionTrigger t;
  t.function = "write";
  t.mode = FunctionTrigger::Mode::CallCount;
  t.inject_call = uint64_t{1} << 40;
  t.retval = INT64_MIN;
  t.errno_value = 9;
  t.max_injections = 3;
  ArgModification m;
  m.argument = kMaxModifyArgument;
  m.op = ArgModification::Op::Xor;
  m.value = -1;
  t.modifications.push_back(m);
  plan.triggers.push_back(t);
  FunctionTrigger p;
  p.function = "read";
  p.mode = FunctionTrigger::Mode::Probability;
  p.probability = 0.125;
  plan.triggers.push_back(p);

  std::string xml = plan.ToXml();
  auto reparsed = Plan::FromXml(xml);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_EQ(reparsed.value().seed, UINT64_MAX);
  EXPECT_EQ(reparsed.value().triggers[0].inject_call, uint64_t{1} << 40);
  EXPECT_EQ(reparsed.value().triggers[0].retval, INT64_MIN);
  EXPECT_DOUBLE_EQ(reparsed.value().triggers[1].probability, 0.125);
  EXPECT_EQ(reparsed.value().ToXml(), xml);
}

TEST(Scenario, ArgModificationOps) {
  auto apply = [](ArgModification::Op op, int64_t k, int64_t v) {
    ArgModification m;
    m.argument = 1;
    m.op = op;
    m.value = k;
    return m.Apply(v);
  };
  EXPECT_EQ(apply(ArgModification::Op::Add, 5, 10), 15);
  EXPECT_EQ(apply(ArgModification::Op::Sub, 5, 10), 5);
  EXPECT_EQ(apply(ArgModification::Op::Set, 5, 10), 5);
  EXPECT_EQ(apply(ArgModification::Op::And, 6, 10), 2);
  EXPECT_EQ(apply(ArgModification::Op::Or, 5, 10), 15);
  EXPECT_EQ(apply(ArgModification::Op::Xor, 6, 10), 12);
}

TEST(Scenario, ArgOpNamesRoundTrip) {
  for (auto op : {ArgModification::Op::Add, ArgModification::Op::Sub,
                  ArgModification::Op::Set, ArgModification::Op::And,
                  ArgModification::Op::Or, ArgModification::Op::Xor}) {
    auto back = ArgOpFromName(ArgOpName(op));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(ArgOpFromName("nope").has_value());
}

// ---- generators ----------------------------------------------------------------

class GenTest : public ::testing::Test {
 protected:
  static std::vector<FaultProfile> Profiles() {
    static const sso::SharedObject kernel = kernel::BuildKernelImage();
    static const sso::SharedObject libc_so = libc::BuildLibc();
    analysis::Workspace ws;
    ws.SetKernel(&kernel);
    ws.AddModule(&libc_so);
    Profiler profiler(ws);
    auto p = profiler.ProfileLibrary(libc_so);
    EXPECT_TRUE(p.ok());
    return {std::move(p).take()};
  }
};

TEST_F(GenTest, ExhaustiveCoversFunctionsWithCodes) {
  auto profiles = Profiles();
  Plan plan = GenerateExhaustive(profiles);
  std::set<std::string> names;
  for (const auto& t : plan.triggers) {
    EXPECT_EQ(t.mode, FunctionTrigger::Mode::Rotate);
    EXPECT_FALSE(t.retval.has_value());
    names.insert(t.function);
  }
  EXPECT_TRUE(names.count("close"));
  EXPECT_TRUE(names.count("read"));
  EXPECT_TRUE(names.count("malloc"));
  EXPECT_FALSE(names.count("getpid"));  // no error codes
}

TEST_F(GenTest, RandomPlanUsesProbabilityMode) {
  auto profiles = Profiles();
  Plan plan = GenerateRandom(profiles, 0.1, 99);
  EXPECT_EQ(plan.seed, 99u);
  ASSERT_FALSE(plan.triggers.empty());
  for (const auto& t : plan.triggers) {
    EXPECT_EQ(t.mode, FunctionTrigger::Mode::Probability);
    EXPECT_DOUBLE_EQ(t.probability, 0.1);
  }
}

TEST_F(GenTest, SubsetRestrictsToNames) {
  auto profiles = Profiles();
  Plan plan = GenerateRandomSubset(profiles, {"read", "write"}, 0.5, 1);
  std::set<std::string> names;
  for (const auto& t : plan.triggers) names.insert(t.function);
  EXPECT_EQ(names, (std::set<std::string>{"read", "write"}));
}

TEST_F(GenTest, ReadyMadeFaultloads) {
  auto profiles = Profiles();
  Plan file_io = FileIoFaultload(profiles, 0.1, 1);
  Plan memory = MemoryFaultload(profiles, 0.1, 1);
  Plan socket = SocketFaultload(profiles, 0.1, 1);

  std::set<std::string> io_names, mem_names, sock_names;
  for (const auto& t : file_io.triggers) io_names.insert(t.function);
  for (const auto& t : memory.triggers) mem_names.insert(t.function);
  for (const auto& t : socket.triggers) sock_names.insert(t.function);

  EXPECT_TRUE(io_names.count("read"));
  EXPECT_TRUE(io_names.count("close"));
  EXPECT_FALSE(io_names.count("malloc"));
  EXPECT_TRUE(mem_names.count("malloc"));
  EXPECT_TRUE(mem_names.count("calloc"));
  EXPECT_FALSE(mem_names.count("read"));
  EXPECT_TRUE(sock_names.count("send"));
  EXPECT_TRUE(sock_names.count("recv"));
  EXPECT_FALSE(sock_names.count("read"));
}

TEST_F(GenTest, GeneratedPlansRoundTripThroughXml) {
  auto profiles = Profiles();
  for (const Plan& plan :
       {GenerateExhaustive(profiles), GenerateRandom(profiles, 0.2, 5)}) {
    auto parsed = Plan::FromXml(plan.ToXml());
    ASSERT_TRUE(parsed.ok()) << parsed.error();
    EXPECT_EQ(parsed.value().triggers.size(), plan.triggers.size());
  }
}

}  // namespace
}  // namespace lfi::core
