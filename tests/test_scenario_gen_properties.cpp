// Property-based tests for the scenario generators (paper §4): every
// plan the generators emit must stay inside the fault profiles it was
// generated from, and generation must be a pure function of its inputs.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "apps/workloads.hpp"
#include "core/faultloads.hpp"
#include "core/scenario_gen.hpp"
#include "core/trigger_engine.hpp"
#include "libc/libc_builder.hpp"

namespace lfi::core {
namespace {

using Injectable = std::pair<int64_t, std::optional<int64_t>>;

const FunctionProfile* FindFunction(
    const std::vector<FaultProfile>& profiles, const std::string& name) {
  for (const FaultProfile& profile : profiles) {
    if (const FunctionProfile* fn = profile.function(name)) return fn;
  }
  return nullptr;
}

/// Property: every generated trigger references a profiled function with
/// at least one error code.
void ExpectTriggersAreInjectable(const Plan& plan,
                                 const std::vector<FaultProfile>& profiles) {
  ASSERT_FALSE(plan.triggers.empty());
  for (const FunctionTrigger& t : plan.triggers) {
    const FunctionProfile* fn = FindFunction(profiles, t.function);
    ASSERT_NE(fn, nullptr) << t.function << " is not in any profile";
    EXPECT_FALSE(fn->error_codes.empty())
        << t.function << " has no error codes to inject";
    EXPECT_FALSE(fn->injectables().empty());
  }
}

/// Property: driving the plan through a TriggerEngine only ever injects
/// (retval, errno) pairs present in the function's profile.
void ExpectInjectionsComeFromProfile(
    const Plan& plan, const std::vector<FaultProfile>& profiles,
    size_t calls_per_function) {
  TriggerEngine engine(plan, profiles);
  for (const std::string& function : engine.functions()) {
    const FunctionProfile* fn = FindFunction(profiles, function);
    ASSERT_NE(fn, nullptr);
    std::set<Injectable> allowed;
    for (const Injectable& pair : fn->injectables()) allowed.insert(pair);
    for (size_t call = 0; call < calls_per_function; ++call) {
      auto decision = engine.OnCall(function, nullptr);
      if (!decision) continue;  // probability trigger did not fire
      ASSERT_TRUE(decision->has_retval)
          << function << ": generator scenarios always set a return value";
      Injectable injected{decision->retval,
                          decision->errno_value
                              ? std::optional<int64_t>(*decision->errno_value)
                              : std::nullopt};
      EXPECT_TRUE(allowed.count(injected) > 0)
          << function << " injected (" << decision->retval << ", "
          << (decision->errno_value ? std::to_string(*decision->errno_value)
                                    : "-")
          << ") which is not in its profile";
    }
  }
}

TEST(ScenarioGenProperties, ExhaustiveTriggersReferenceInjectableFunctions) {
  const std::vector<FaultProfile>& profiles = apps::LibcProfiles();
  ExpectTriggersAreInjectable(GenerateExhaustive(profiles), profiles);
}

TEST(ScenarioGenProperties, RandomTriggersReferenceInjectableFunctions) {
  const std::vector<FaultProfile>& profiles = apps::LibcProfiles();
  for (uint64_t seed : {1ull, 7ull, 99ull}) {
    ExpectTriggersAreInjectable(GenerateRandom(profiles, 0.5, seed), profiles);
  }
}

TEST(ScenarioGenProperties, SubsetTriggersReferenceInjectableFunctions) {
  const std::vector<FaultProfile>& profiles = apps::LibcProfiles();
  Plan plan = GenerateRandomSubset(profiles, libc::FileIoFunctions(), 0.5, 3);
  ExpectTriggersAreInjectable(plan, profiles);
  // And the subset restriction actually holds.
  std::set<std::string> allowed;
  for (const std::string& fn : libc::FileIoFunctions()) allowed.insert(fn);
  for (const FunctionTrigger& t : plan.triggers) {
    EXPECT_TRUE(allowed.count(t.function) > 0)
        << t.function << " escaped the subset";
  }
}

TEST(ScenarioGenProperties, ExhaustiveInjectionsComeFromProfile) {
  const std::vector<FaultProfile>& profiles = apps::LibcProfiles();
  // Rotate triggers fire on every call, cycling the error codes: a few
  // laps through each function's codes must all stay inside the profile.
  ExpectInjectionsComeFromProfile(GenerateExhaustive(profiles), profiles, 12);
}

TEST(ScenarioGenProperties, RandomInjectionsComeFromProfile) {
  const std::vector<FaultProfile>& profiles = apps::LibcProfiles();
  // p = 1: every call fires, every draw must come from the profile.
  ExpectInjectionsComeFromProfile(GenerateRandom(profiles, 1.0, 11), profiles,
                                  8);
}

TEST(ScenarioGenProperties, IdenticalSeedsYieldIdenticalPlans) {
  const std::vector<FaultProfile>& profiles = apps::LibcProfiles();
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    Plan a = GenerateRandom(profiles, 0.3, seed);
    Plan b = GenerateRandom(profiles, 0.3, seed);
    EXPECT_EQ(a.ToXml(), b.ToXml()) << "seed " << seed;
    EXPECT_EQ(a.seed, seed);
  }
  // Exhaustive generation has no randomness at all.
  EXPECT_EQ(GenerateExhaustive(profiles).ToXml(),
            GenerateExhaustive(profiles).ToXml());
  // Subset generation is deterministic per (functions, p, seed) too.
  EXPECT_EQ(
      GenerateRandomSubset(profiles, libc::FileIoFunctions(), 0.2, 5).ToXml(),
      GenerateRandomSubset(profiles, libc::FileIoFunctions(), 0.2, 5).ToXml());
}

TEST(ScenarioGenProperties, SeedOnlyChangesTheRngStream) {
  const std::vector<FaultProfile>& profiles = apps::LibcProfiles();
  // The random generator's trigger *structure* is seed-independent; only
  // the embedded RNG seed differs. (Draws happen at injection time.)
  Plan a = GenerateRandom(profiles, 0.3, 1);
  Plan b = GenerateRandom(profiles, 0.3, 2);
  ASSERT_EQ(a.triggers.size(), b.triggers.size());
  for (size_t i = 0; i < a.triggers.size(); ++i) {
    EXPECT_EQ(a.triggers[i].function, b.triggers[i].function);
    EXPECT_EQ(a.triggers[i].probability, b.triggers[i].probability);
  }
  EXPECT_NE(a.seed, b.seed);
}

}  // namespace
}  // namespace lfi::core
