// SEU fault-model tests: the <seu> plan element, precise instruction-stop
// arming, outcome classification, the SIHFT hardening transforms, and —
// the load-bearing property — bit-identical flip campaigns across all
// three engines, snapshot modes, job counts, and the serve fabric.
//
// The determinism claim is the whole product here: an SEU campaign's
// verdict (including the architectural state digest of every run) may
// depend only on the scenario, never on how it was executed. A flip armed
// mid-superblock must deoptimize the fused span at exactly the right
// instruction and leave the machine in the same state the reference
// interpreter reaches.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "apps/seu_guest.hpp"
#include "campaign/runner.hpp"
#include "campaign/seu.hpp"
#include "core/scenario.hpp"
#include "isa/codebuilder.hpp"
#include "isa/harden.hpp"
#include "libc/libc_builder.hpp"
#include "serve/coordinator.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"
#include "test_helpers.hpp"
#include "vm/machine.hpp"

namespace lfi {
namespace {

using campaign::CampaignOptions;
using campaign::CampaignReport;
using campaign::Scenario;
using campaign::ScenarioResult;
using core::Plan;
using core::SeuFault;
using isa::CodeBuilder;
using isa::Reg;

// ---- <seu> plan XML --------------------------------------------------------

TEST(SeuXml, RoundTripAllTargets) {
  Plan plan;
  plan.seed = 9;
  SeuFault reg;
  reg.target = SeuFault::Target::Reg;
  reg.reg = 9;  // BP
  reg.bit = 63;
  reg.at_instruction = 123456789;
  reg.window_module = "app.so";
  reg.window_begin = 0x40;
  reg.window_end = 0x80;
  SeuFault stack;
  stack.target = SeuFault::Target::Stack;
  stack.offset = 0xF8;
  stack.bit = 0;
  stack.at_instruction = 1;
  SeuFault heap;
  heap.target = SeuFault::Target::Heap;
  heap.offset = 4096;
  heap.bit = 31;
  heap.at_instruction = 77;
  heap.pid = 3;
  SeuFault data;
  data.target = SeuFault::Target::Data;
  data.module = "libc.so";
  data.offset = 16;
  data.bit = 7;
  data.at_instruction = 500;
  plan.seus = {reg, stack, heap, data};

  auto parsed = Plan::FromXml(plan.ToXml());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().seus.size(), 4u);
  const SeuFault& r = parsed.value().seus[0];
  EXPECT_EQ(r.target, SeuFault::Target::Reg);
  EXPECT_EQ(r.reg, 9);
  EXPECT_EQ(r.bit, 63);
  EXPECT_EQ(r.at_instruction, 123456789u);
  EXPECT_EQ(r.window_module, "app.so");
  EXPECT_EQ(r.window_begin, 0x40u);
  EXPECT_EQ(r.window_end, 0x80u);
  const SeuFault& s = parsed.value().seus[1];
  EXPECT_EQ(s.target, SeuFault::Target::Stack);
  EXPECT_EQ(s.offset, 0xF8u);
  EXPECT_EQ(s.bit, 0);
  const SeuFault& h = parsed.value().seus[2];
  EXPECT_EQ(h.target, SeuFault::Target::Heap);
  EXPECT_EQ(h.pid, 3);
  const SeuFault& d = parsed.value().seus[3];
  EXPECT_EQ(d.target, SeuFault::Target::Data);
  EXPECT_EQ(d.module, "libc.so");
  // Serialization is a fixpoint.
  EXPECT_EQ(parsed.value().ToXml(), plan.ToXml());
}

TEST(SeuXml, RejectsMalformedFaults) {
  auto bad = [](const char* xml) {
    auto plan = Plan::FromXml(xml);
    EXPECT_FALSE(plan.ok()) << "accepted: " << xml;
  };
  bad(R"(<plan><seu target="flux" reg="R0" bit="1" at="5" /></plan>)");
  bad(R"(<plan><seu target="reg" reg="R9" bit="1" at="5" /></plan>)");
  bad(R"(<plan><seu target="reg" reg="R0" bit="64" at="5" /></plan>)");
  bad(R"(<plan><seu target="reg" reg="R0" bit="-1" at="5" /></plan>)");
  bad(R"(<plan><seu target="reg" reg="R0" bit="1" at="many" /></plan>)");
  bad(R"(<plan><seu target="reg" reg="R0" bit="1" at="5" pid="0" /></plan>)");
  bad(R"(<plan><seu target="data" offset="8" bit="1" at="5" /></plan>)");
  bad(R"(<plan><seu target="stack" offset="8x" bit="1" at="5" /></plan>)");
  bad(R"(<plan><seu target="reg" reg="R0" bit="1" at="5" )"
      R"(wmodule="m" wbegin="9" wend="4" /></plan>)");
}

// ---- precise instruction stops ---------------------------------------------

/// All four guest variants share one observable: at any armed instant the
/// summed per-process instruction counts equal the instant exactly.
TEST(InstructionStop, FiresAtTheExactInstant) {
  auto guest = apps::BuildSeuGuest(apps::HardeningMode::None);
  ASSERT_TRUE(guest.ok());
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(guest.value());
  std::vector<uint64_t> observed;
  for (uint64_t at : {1ull, 7ull, 1999ull, 2000ull, 2001ull, 5000ull}) {
    machine.ArmInstructionStop(at, [&observed](vm::Machine& m) {
      uint64_t executed = 0;
      for (const auto& p : m.processes()) executed += p->instructions();
      observed.push_back(executed);
    });
  }
  ASSERT_TRUE(machine.CreateProcess(apps::kSeuGuestEntry).ok());
  machine.Run();
  // Stops straddle quantum boundaries (kQuantum = 2000) deliberately.
  EXPECT_EQ(observed,
            (std::vector<uint64_t>{1, 7, 1999, 2000, 2001, 5000}));
  EXPECT_EQ(machine.armed_stop_count(), 0u);
}

TEST(InstructionStop, NeverDueStopsDoNotFireAndResetClears) {
  auto guest = apps::BuildSeuGuest(apps::HardeningMode::None);
  ASSERT_TRUE(guest.ok());
  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(guest.value());
  bool fired = false;
  machine.ArmInstructionStop(1'000'000'000,
                             [&fired](vm::Machine&) { fired = true; });
  ASSERT_TRUE(machine.CreateProcess(apps::kSeuGuestEntry).ok());
  machine.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(machine.armed_stop_count(), 1u);
  machine.Reset();
  EXPECT_EQ(machine.armed_stop_count(), 0u);
}

/// The mid-span deoptimization claim: stopping at instruction N and
/// digesting the machine yields the same bits in all three engines, for
/// instants chosen to fall inside fused superblock spans.
TEST(InstructionStop, MidRunDigestIdenticalAcrossEngines) {
  for (uint64_t at : {37ull, 1234ull, 4321ull, 8000ull}) {
    std::vector<uint64_t> digests;
    for (vm::ExecMode mode : {vm::ExecMode::Superblock,
                              vm::ExecMode::Predecoded,
                              vm::ExecMode::Reference}) {
      auto guest = apps::BuildSeuGuest(apps::HardeningMode::None);
      ASSERT_TRUE(guest.ok());
      vm::Machine machine;
      machine.SetExecMode(mode);
      machine.Load(libc::BuildLibc());
      machine.Load(guest.value());
      machine.ArmInstructionStop(at, [&digests](vm::Machine& m) {
        digests.push_back(m.StateDigest());
      });
      ASSERT_TRUE(machine.CreateProcess(apps::kSeuGuestEntry).ok());
      machine.Run();
    }
    ASSERT_EQ(digests.size(), 3u) << "instant " << at;
    EXPECT_EQ(digests[0], digests[1]) << "instant " << at;
    EXPECT_EQ(digests[0], digests[2]) << "instant " << at;
  }
}

// ---- outcome classification ------------------------------------------------

TEST(SeuClassify, Taxonomy) {
  campaign::GoldenRun golden;
  golden.status = campaign::ScenarioStatus::Exited;
  golden.exit_code = 40;
  golden.state_digest = 0x1111;
  const int64_t detect = isa::kSeuDetectExitCode;

  ScenarioResult r;
  r.status = campaign::ScenarioStatus::Crashed;
  EXPECT_EQ(campaign::ClassifySeu(r, golden, detect),
            campaign::SeuOutcome::Crash);
  r.status = campaign::ScenarioStatus::Deadlocked;
  EXPECT_EQ(campaign::ClassifySeu(r, golden, detect),
            campaign::SeuOutcome::Crash);
  r.status = campaign::ScenarioStatus::BudgetSpent;
  EXPECT_EQ(campaign::ClassifySeu(r, golden, detect),
            campaign::SeuOutcome::Crash);

  r.status = campaign::ScenarioStatus::Exited;
  r.exit_code = detect;
  r.state_digest = 0x9999;
  EXPECT_EQ(campaign::ClassifySeu(r, golden, detect),
            campaign::SeuOutcome::Detected);

  r.exit_code = golden.exit_code;
  r.state_digest = golden.state_digest;
  EXPECT_EQ(campaign::ClassifySeu(r, golden, detect),
            campaign::SeuOutcome::Masked);

  // Same exit code, different final state: silently corrupted.
  r.state_digest = 0x2222;
  EXPECT_EQ(campaign::ClassifySeu(r, golden, detect),
            campaign::SeuOutcome::Sdc);
  r.exit_code = 41;
  r.state_digest = golden.state_digest;
  EXPECT_EQ(campaign::ClassifySeu(r, golden, detect),
            campaign::SeuOutcome::Sdc);

  // A guest whose *golden* exit code equals the detect code gives the
  // classifier no detection signal — such exits stay masked/sdc.
  campaign::GoldenRun odd = golden;
  odd.exit_code = detect;
  r.exit_code = detect;
  r.state_digest = odd.state_digest;
  EXPECT_EQ(campaign::ClassifySeu(r, odd, detect),
            campaign::SeuOutcome::Masked);
}

// ---- SIHFT transforms ------------------------------------------------------

TEST(Harden, TmrVoteRepairsASingleFlippedCopy) {
  CodeBuilder b;
  b.begin_function("main");
  b.mov_ri(Reg::R1, 0x5A5A);
  b.mov_ri(Reg::R4, 0x5A5A);
  b.mov_ri(Reg::R5, 0x5A5A);
  b.xor_ri(Reg::R4, 1 << 13);  // the SEU: one copy diverges
  isa::EmitTmrVote(b, Reg::R1, Reg::R4, Reg::R5, Reg::R6);
  // All three copies must equal the original value again; exit with the
  // xor-fold so any residue is visible in the exit code.
  b.mov_rr(Reg::R0, Reg::R1);
  b.xor_rr(Reg::R0, Reg::R4);
  b.xor_rr(Reg::R0, Reg::R5);
  b.xor_ri(Reg::R0, 0x5A5A);
  b.halt();
  b.end_function();
  auto result = test::RunProgram(sso::FromCodeUnit("tmr.so", b.Finish()),
                                 "main");
  EXPECT_EQ(result.state, vm::ProcState::Exited);
  EXPECT_EQ(result.exit_code, 0);
}

TEST(Harden, DwcCheckCatchesADivergedPair) {
  CodeBuilder b;
  b.begin_function("main");
  auto detect = b.new_label();
  isa::DwcEmitter d(b, {{Reg::R1, Reg::R4}}, detect);
  d.mov_ri(Reg::R1, 5);
  b.xor_ri(Reg::R4, 1);  // the SEU: shadow copy flips
  d.add_ri(Reg::R1, 3);  // both copies advance; divergence persists
  d.check(Reg::R1);
  b.mov_ri(Reg::R0, 0);
  b.halt();
  b.bind(detect);
  b.mov_ri(Reg::R0, isa::kSeuDetectExitCode);
  b.halt();
  b.end_function();
  auto result = test::RunProgram(sso::FromCodeUnit("dwc.so", b.Finish()),
                                 "main");
  EXPECT_EQ(result.state, vm::ProcState::Exited);
  EXPECT_EQ(result.exit_code, isa::kSeuDetectExitCode);
}

TEST(Harden, FaultFreeGuestVariantsComputeTheSameResult) {
  // The hardening transforms must be semantics-preserving: with no flip
  // injected, all four variants reach the same checksum-derived exit code.
  std::vector<int64_t> exits;
  for (apps::HardeningMode mode :
       {apps::HardeningMode::None, apps::HardeningMode::Dwc,
        apps::HardeningMode::Cfcss, apps::HardeningMode::Tmr}) {
    auto guest = apps::BuildSeuGuest(mode);
    ASSERT_TRUE(guest.ok()) << apps::HardeningModeName(mode);
    auto result = test::RunProgram(std::move(guest).take(),
                                   apps::kSeuGuestEntry);
    EXPECT_EQ(result.state, vm::ProcState::Exited)
        << apps::HardeningModeName(mode) << ": " << result.fault;
    exits.push_back(result.exit_code);
  }
  ASSERT_EQ(exits.size(), 4u);
  EXPECT_EQ(exits[0], exits[1]);
  EXPECT_EQ(exits[0], exits[2]);
  EXPECT_EQ(exits[0], exits[3]);
  EXPECT_NE(exits[0], isa::kSeuDetectExitCode);
}

TEST(Harden, CfcssRewriteIsWellFormed) {
  auto guest = apps::BuildSeuGuest(apps::HardeningMode::Cfcss);
  ASSERT_TRUE(guest.ok());
  // The rewrite appends the signature word (data grows) and the detect
  // handler (a new local symbol).
  auto baseline = apps::BuildSeuGuest(apps::HardeningMode::None);
  ASSERT_TRUE(baseline.ok());
  EXPECT_GT(guest.value().data.size(), baseline.value().data.size());
  bool has_detect = false;
  for (const isa::Symbol& sym : guest.value().locals) {
    if (sym.name == "__cfcss_detect") has_detect = true;
  }
  EXPECT_TRUE(has_detect);
}

// ---- campaign identity: engines, jobs, snapshots, fabric -------------------

CampaignOptions SeuOptions() {
  CampaignOptions opts;
  opts.jobs = 1;
  opts.entry = apps::kSeuGuestEntry;
  opts.collect_state_digest = true;
  opts.collect_replays = true;
  return opts;
}

campaign::CampaignRunner MakeRunner(CampaignOptions opts) {
  return campaign::CampaignRunner(
      apps::SeuGuestMachineSetup(apps::HardeningMode::None), {}, opts);
}

/// A small sweep over registers + data with a fixed golden yardstick.
std::vector<Scenario> SmallSweep(const campaign::GoldenRun& golden,
                                 size_t samples) {
  auto guest = apps::BuildSeuGuest(apps::HardeningMode::None);
  campaign::SeuSweepSpec space;
  space.instants_to = golden.instructions - 1;
  space.samples = samples;
  space.seed = 3;
  space.stack = true;
  space.data = true;
  space.data_module = apps::kSeuGuestModule;
  space.data_bytes = guest.value().data.size();
  return campaign::BuildSeuSweep(space);
}

campaign::GoldenRun Golden() {
  campaign::CampaignRunner runner = MakeRunner(SeuOptions());
  Scenario golden_scenario;
  golden_scenario.name = "golden";
  CampaignReport report = runner.Run({golden_scenario});
  campaign::GoldenRun golden = campaign::GoldenFrom(report.results.front());
  EXPECT_EQ(golden.status, campaign::ScenarioStatus::Exited);
  EXPECT_GT(golden.instructions, 0u);
  return golden;
}

/// The SEU identity contract: everything a verdict is built from.
void ExpectSameSeuResults(const CampaignReport& a, const CampaignReport& b,
                          const char* label) {
  ASSERT_EQ(a.results.size(), b.results.size()) << label;
  for (size_t i = 0; i < a.results.size(); ++i) {
    const ScenarioResult& ra = a.results[i];
    const ScenarioResult& rb = b.results[i];
    EXPECT_EQ(ra.name, rb.name) << label << " scenario " << i;
    EXPECT_EQ(ra.status, rb.status) << label << " " << ra.name;
    EXPECT_EQ(ra.exit_code, rb.exit_code) << label << " " << ra.name;
    EXPECT_EQ(ra.signal, rb.signal) << label << " " << ra.name;
    EXPECT_EQ(ra.instructions, rb.instructions) << label << " " << ra.name;
    EXPECT_EQ(ra.state_digest, rb.state_digest) << label << " " << ra.name;
    EXPECT_EQ(ra.seu_landed, rb.seu_landed) << label << " " << ra.name;
    EXPECT_EQ(ra.fault_message, rb.fault_message) << label << " " << ra.name;
    EXPECT_EQ(ra.replay.ToXml(), rb.replay.ToXml()) << label << " " << ra.name;
  }
}

TEST(SeuCampaign, BitIdenticalAcrossEngines) {
  campaign::GoldenRun golden = Golden();
  std::vector<Scenario> sweep = SmallSweep(golden, 16);
  CampaignOptions opts = SeuOptions();
  opts.exec_mode = vm::ExecMode::Superblock;
  CampaignReport superblock = MakeRunner(opts).Run(sweep);
  opts.exec_mode = vm::ExecMode::Predecoded;
  CampaignReport predecoded = MakeRunner(opts).Run(sweep);
  opts.exec_mode = vm::ExecMode::Reference;
  CampaignReport reference = MakeRunner(opts).Run(sweep);
  ExpectSameSeuResults(superblock, predecoded, "superblock-vs-predecoded");
  ExpectSameSeuResults(superblock, reference, "superblock-vs-reference");
  // And the classified report (the CLI's stdout) is textually identical.
  EXPECT_EQ(campaign::ClassifyCampaign(superblock, golden,
                                       isa::kSeuDetectExitCode)
                .ToText(),
            campaign::ClassifyCampaign(reference, golden,
                                       isa::kSeuDetectExitCode)
                .ToText());
  // The sweep must exercise real outcomes for identity to mean much.
  campaign::SeuCounts counts =
      campaign::ClassifyCampaign(superblock, golden, isa::kSeuDetectExitCode)
          .counts;
  EXPECT_GT(counts.total - counts.not_landed, 0u);
}

TEST(SeuCampaign, BitIdenticalAcrossJobsAndSnapshotModes) {
  campaign::GoldenRun golden = Golden();
  std::vector<Scenario> sweep = SmallSweep(golden, 16);
  CampaignReport baseline = MakeRunner(SeuOptions()).Run(sweep);

  CampaignOptions jobs4 = SeuOptions();
  jobs4.jobs = 4;
  ExpectSameSeuResults(baseline, MakeRunner(jobs4).Run(sweep), "jobs-1-vs-4");

  CampaignOptions snap = SeuOptions();
  snap.snapshot = true;
  snap.warmup_instructions = 500;
  CampaignOptions tree = SeuOptions();
  tree.snapshot_tree = true;
  tree.warmup_instructions = 500;
  CampaignOptions cold = SeuOptions();
  cold.warmup_instructions = 500;
  CampaignReport cold_report = MakeRunner(cold).Run(sweep);
  ExpectSameSeuResults(cold_report, MakeRunner(snap).Run(sweep),
                       "cold-vs-snapshot");
  ExpectSameSeuResults(cold_report, MakeRunner(tree).Run(sweep),
                       "cold-vs-tree");
}

TEST(SeuCampaign, ReplayReproducesTheFlip) {
  campaign::GoldenRun golden = Golden();
  std::vector<Scenario> sweep = SmallSweep(golden, 16);
  campaign::CampaignRunner runner = MakeRunner(SeuOptions());
  CampaignReport report = runner.Run(sweep);
  // Every flip scenario's replay plan carries its <seu> — re-running the
  // replay must reproduce the identical outcome, digest included.
  size_t replayed = 0;
  std::vector<Scenario> replays;
  std::vector<const ScenarioResult*> originals;
  for (const ScenarioResult& r : report.results) {
    if (r.seu_landed == 0) continue;
    ASSERT_EQ(r.replay.seus.size(), 1u) << r.name;
    Scenario again;
    again.name = r.name;
    again.plan = r.replay;
    replays.push_back(std::move(again));
    originals.push_back(&r);
    ++replayed;
  }
  ASSERT_GT(replayed, 0u);
  CampaignReport second = runner.Run(replays);
  ASSERT_EQ(second.results.size(), replayed);
  for (size_t i = 0; i < replayed; ++i) {
    EXPECT_EQ(second.results[i].status, originals[i]->status);
    EXPECT_EQ(second.results[i].exit_code, originals[i]->exit_code);
    EXPECT_EQ(second.results[i].state_digest, originals[i]->state_digest);
    EXPECT_EQ(second.results[i].seu_landed, originals[i]->seu_landed);
  }
}

TEST(SeuFabric, WorkerMatchesInProcess) {
  campaign::GoldenRun golden = Golden();
  std::vector<Scenario> sweep = SmallSweep(golden, 12);

  serve::TargetSpec spec;
  spec.modules.push_back(libc::BuildLibc().Serialize());
  auto guest = apps::BuildSeuGuest(apps::HardeningMode::None);
  ASSERT_TRUE(guest.ok());
  spec.modules.push_back(guest.value().Serialize());

  CampaignOptions opts = SeuOptions();
  auto setup = serve::MakeSetup(spec);
  ASSERT_TRUE(setup.ok());
  campaign::CampaignRunner local(std::move(setup).take(), {}, opts);
  CampaignReport baseline = local.Run(sweep);

  auto worker = serve::SpawnLocalWorker();
  ASSERT_TRUE(worker.ok()) << worker.error();
  serve::FabricOptions fabric_opts;
  fabric_opts.batch_size = 3;
  serve::FabricCoordinator fabric(spec, {}, opts, fabric_opts);
  ASSERT_TRUE(fabric.AddWorkerFd(worker.value().fd, "w1").ok());
  CampaignReport distributed = fabric.Run(sweep);
  EXPECT_GT(fabric.stats().scenarios_remote, 0u);
  ExpectSameSeuResults(baseline, distributed, "local-vs-fabric");
  ::waitpid(worker.value().pid, nullptr, WNOHANG);
}

TEST(SeuSearch, DirectedSearchFindsAndDedupesFlips) {
  campaign::GoldenRun golden = Golden();
  auto guest = apps::BuildSeuGuest(apps::HardeningMode::None);
  campaign::SeuSweepSpec space;
  space.instants_to = golden.instructions - 1;
  space.seed = 3;
  space.data = true;
  space.data_module = apps::kSeuGuestModule;
  space.data_bytes = guest.value().data.size();

  campaign::CampaignRunner runner = MakeRunner(SeuOptions());
  campaign::SeuSearchOptions sopts;
  sopts.rounds = 2;
  sopts.per_round = 12;
  sopts.detect_exit_code = isa::kSeuDetectExitCode;
  campaign::SeuSearchResult found =
      campaign::SdcDirectedSearch(runner, space, golden, sopts);
  EXPECT_EQ(found.rounds_run, 2u);
  EXPECT_EQ(found.report.counts.total, found.report.verdicts.size());
  // Names are unique: the search never re-runs a flip it has seen.
  std::set<std::string> names;
  for (const campaign::SeuVerdict& v : found.report.verdicts) {
    // Strip the "seu-NNNN-" discovery-index prefix: the flip key itself
    // must be unique.
    EXPECT_TRUE(names.insert(v.name.substr(9)).second) << v.name;
  }
  // SDC scenarios carry their flip and re-classify as SDC.
  if (!found.sdc_scenarios.empty()) {
    CampaignReport again = runner.Run(found.sdc_scenarios);
    campaign::SeuCampaignReport classified = campaign::ClassifyCampaign(
        again, golden, isa::kSeuDetectExitCode);
    EXPECT_EQ(classified.counts.sdc, found.sdc_scenarios.size());
  }
}

}  // namespace
}  // namespace lfi
