#include <gtest/gtest.h>

#include "analysis/side_effects.hpp"
#include "isa/codebuilder.hpp"

namespace lfi::analysis {
namespace {

using isa::CodeBuilder;
using isa::Reg;

/// Scan the single-function module `body` with a solver that reports every
/// register as the fixed constant 123 (unless overridden).
std::vector<SideEffect> Scan(std::function<void(CodeBuilder&)> body,
                             ValueSet solver_result = {{123}, false},
                             bool with_prologue = false) {
  CodeBuilder b;
  b.begin_function("f", true, /*bare=*/!with_prologue);
  body(b);
  b.end_function();
  auto so = sso::FromCodeUnit("lib.so", b.Finish());
  auto cfg = BuildCfg(so, *so.find_export("f"));
  EXPECT_TRUE(cfg.ok());
  std::vector<SideEffect> all;
  for (size_t i = 0; i < cfg.value().blocks.size(); ++i) {
    auto effects = ScanBlockEffects(
        cfg.value(), i, "lib.so",
        [&](size_t, size_t, Reg) { return solver_result; });
    for (const auto& e : effects) MergeEffect(&all, e);
  }
  return all;
}

TEST(SideEffects, TlsStoreDetected) {
  auto effects = Scan([](CodeBuilder& b) {
    b.lea_tls(Reg::R2, 0);
    b.store(Reg::R2, 0, Reg::R1);
    b.ret();
  });
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].kind, SideEffect::Kind::Tls);
  EXPECT_EQ(effects[0].offset, 0u);
  EXPECT_EQ(effects[0].module, "lib.so");
  EXPECT_EQ(effects[0].values, (std::set<int64_t>{123}));
}

TEST(SideEffects, TlsOffsetAccumulatesDisplacement) {
  auto effects = Scan([](CodeBuilder& b) {
    b.lea_tls(Reg::R2, 8);
    b.store(Reg::R2, 4, Reg::R1);
    b.ret();
  });
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].offset, 12u);
}

TEST(SideEffects, GlobalStoreDetected) {
  auto effects = Scan([](CodeBuilder& b) {
    b.lea_data(Reg::R3, 16);
    b.store(Reg::R3, 0, Reg::R1);
    b.ret();
  });
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].kind, SideEffect::Kind::Global);
  EXPECT_EQ(effects[0].offset, 16u);
}

TEST(SideEffects, StoreImmediateCarriesConstant) {
  auto effects = Scan([](CodeBuilder& b) {
    b.lea_data(Reg::R3, 0);
    b.store_i(Reg::R3, 0, -55);
    b.ret();
  });
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].values, (std::set<int64_t>{-55}));
}

TEST(SideEffects, OutputArgumentDetected) {
  // §3.2: a write through a pointer loaded from a positive BP offset.
  auto effects = Scan(
      [](CodeBuilder& b) {
        b.load(Reg::R3, Reg::BP, isa::ArgSlot(1));
        b.store(Reg::R3, 0, Reg::R1);
        b.leave_ret();
      },
      {{123}, false}, /*with_prologue=*/true);
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].kind, SideEffect::Kind::Arg);
  EXPECT_EQ(effects[0].arg_index, 1);
}

TEST(SideEffects, BaseSurvivesMovCopies) {
  auto effects = Scan([](CodeBuilder& b) {
    b.lea_tls(Reg::R2, 0);
    b.mov_rr(Reg::R4, Reg::R2);
    b.store(Reg::R4, 0, Reg::R1);
    b.ret();
  });
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].kind, SideEffect::Kind::Tls);
}

TEST(SideEffects, LeaAdjustsTrackedBase) {
  auto effects = Scan([](CodeBuilder& b) {
    b.lea_tls(Reg::R2, 0);
    b.lea(Reg::R3, Reg::R2, 24);
    b.store(Reg::R3, 0, Reg::R1);
    b.ret();
  });
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_EQ(effects[0].offset, 24u);
}

TEST(SideEffects, OverwrittenBaseNotReported) {
  auto effects = Scan([](CodeBuilder& b) {
    b.lea_tls(Reg::R2, 0);
    b.mov_ri(Reg::R2, 0x5000);  // base register clobbered
    b.store(Reg::R2, 0, Reg::R1);
    b.ret();
  });
  EXPECT_TRUE(effects.empty());
}

TEST(SideEffects, CallClobbersTrackedBases) {
  auto effects = Scan([](CodeBuilder& b) {
    b.lea_tls(Reg::R2, 0);
    b.call_sym("g");
    b.store(Reg::R2, 0, Reg::R1);
    b.ret();
  });
  EXPECT_TRUE(effects.empty());
}

TEST(SideEffects, PlainStackStoreNotAnEffect) {
  auto effects = Scan(
      [](CodeBuilder& b) {
        b.store(Reg::BP, -8, Reg::R1);  // spill, not a side channel
        b.leave_ret();
      },
      {{123}, false}, true);
  EXPECT_TRUE(effects.empty());
}

TEST(SideEffects, UnknownSolverValuesFlagged) {
  auto effects = Scan(
      [](CodeBuilder& b) {
        b.lea_tls(Reg::R2, 0);
        b.store(Reg::R2, 0, Reg::R1);
        b.ret();
      },
      ValueSet{{}, true});
  ASSERT_EQ(effects.size(), 1u);
  EXPECT_TRUE(effects[0].values.empty());
  EXPECT_TRUE(effects[0].unknown_values);
}

TEST(SideEffects, MergeUnionsValuesPerLocation) {
  std::vector<SideEffect> list;
  SideEffect a;
  a.kind = SideEffect::Kind::Tls;
  a.module = "m";
  a.offset = 0;
  a.values = {1, 2};
  SideEffect b = a;
  b.values = {2, 3};
  MergeEffect(&list, a);
  MergeEffect(&list, b);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].values, (std::set<int64_t>{1, 2, 3}));
}

TEST(SideEffects, MergeKeepsDistinctLocations) {
  std::vector<SideEffect> list;
  SideEffect a;
  a.kind = SideEffect::Kind::Tls;
  a.module = "m";
  a.offset = 0;
  SideEffect b = a;
  b.offset = 8;
  SideEffect c = a;
  c.kind = SideEffect::Kind::Arg;
  c.arg_index = 2;
  MergeEffect(&list, a);
  MergeEffect(&list, b);
  MergeEffect(&list, c);
  EXPECT_EQ(list.size(), 3u);
}

}  // namespace
}  // namespace lfi::analysis
