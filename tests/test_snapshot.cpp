// Differential tests for snapshot/restore scenario execution: a campaign
// run with CampaignOptions::snapshot (per-worker warm-once / restore-per-
// scenario) must produce a bit-identical report to the cold path that
// resets and rebuilds the machine per scenario — statuses, exit codes,
// fault messages, instruction counts, injection logs, per-scenario and
// union coverage bitmaps, crash hashes, and replay XML — on the db-suite
// and Pidgin targets, for any jobs count, with and without a fault-free
// warmup prefix, and after Machine::Reset wiped the snapshot's processes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/dbserver.hpp"
#include "apps/pidgin.hpp"
#include "apps/workloads.hpp"
#include "campaign/explorer.hpp"
#include "campaign/runner.hpp"
#include "core/scenario_gen.hpp"
#include "vm/machine.hpp"

namespace lfi::campaign {
namespace {

void ExpectResultsIdentical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.exit_code, b.exit_code);
  EXPECT_EQ(a.signal, b.signal);
  EXPECT_EQ(a.fault_message, b.fault_message);
  EXPECT_EQ(a.injections, b.injections);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.covered_offsets, b.covered_offsets);
  EXPECT_EQ(a.covered_by_module, b.covered_by_module);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.fault_frames, b.fault_frames);
  EXPECT_EQ(a.crash_site_hash, b.crash_site_hash);
  EXPECT_EQ(a.crash_hash, b.crash_hash);
  EXPECT_EQ(a.replay.ToXml(), b.replay.ToXml());
}

void ExpectReportsIdentical(const CampaignReport& a, const CampaignReport& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    SCOPED_TRACE("scenario " + std::to_string(i));
    ExpectResultsIdentical(a.results[i], b.results[i]);
  }
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.deadlocks, b.deadlocks);
  EXPECT_EQ(a.budget_spent, b.budget_spent);
  EXPECT_EQ(a.setup_errors, b.setup_errors);
  EXPECT_EQ(a.total_injections, b.total_injections);
  EXPECT_EQ(a.total_instructions, b.total_instructions);
  EXPECT_EQ(a.coverage, b.coverage);  // union bitmaps, module by module
}

std::vector<Scenario> MakeScenarios(size_t count, double probability,
                                    uint64_t seed) {
  const auto& profiles = apps::LibcProfiles();
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < count; ++i) {
    Scenario s;
    s.name = "scn-" + std::to_string(i);
    s.plan = core::GenerateRandom(profiles, probability, DeriveSeed(seed, i));
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

CampaignOptions BaseOptions(const std::string& entry) {
  CampaignOptions opts;
  opts.jobs = 1;
  opts.entry = entry;
  opts.track_coverage = true;
  opts.collect_scenario_coverage = true;
  opts.collect_replays = true;
  return opts;
}

CampaignReport RunCampaign(const MachineSetup& setup,
                           const std::vector<Scenario>& scenarios,
                           CampaignOptions opts) {
  CampaignRunner runner(setup, apps::LibcProfiles(), opts);
  return runner.Run(scenarios);
}

TEST(SnapshotDiff, DbSuiteIdenticalToColdPath) {
  auto setup = apps::DbSuiteMachineSetup();
  auto scenarios = MakeScenarios(10, 0.05, 11);
  CampaignOptions cold = BaseOptions(apps::kDbTestEntry);
  CampaignOptions snap = cold;
  snap.snapshot = true;
  ExpectReportsIdentical(RunCampaign(setup, scenarios, cold),
                         RunCampaign(setup, scenarios, snap));
}

TEST(SnapshotDiff, PidginIdenticalToColdPath) {
  auto setup = apps::PidginMachineSetup();
  auto scenarios = MakeScenarios(10, 0.1, 23);
  CampaignOptions cold = BaseOptions(apps::kPidginEntry);
  CampaignOptions snap = cold;
  snap.snapshot = true;
  ExpectReportsIdentical(RunCampaign(setup, scenarios, cold),
                         RunCampaign(setup, scenarios, snap));
}

TEST(SnapshotDiff, JobsInvariantUnderSnapshot) {
  auto setup = apps::DbSuiteMachineSetup();
  auto scenarios = MakeScenarios(12, 0.05, 31);
  CampaignOptions opts = BaseOptions(apps::kDbTestEntry);
  opts.snapshot = true;
  CampaignReport one = RunCampaign(setup, scenarios, opts);
  opts.jobs = 4;
  CampaignReport four = RunCampaign(setup, scenarios, opts);
  ExpectReportsIdentical(one, four);
}

// A fault-free warmup prefix moves the fault window; cold execution with
// the same warmup must match the snapshot run bit for bit (the prefix is
// re-executed cold, skipped via restore under snapshot).
TEST(SnapshotDiff, WarmupPrefixIdenticalColdVsSnapshot) {
  auto setup = apps::DbSuiteMachineSetup();
  auto scenarios = MakeScenarios(8, 0.1, 47);
  CampaignOptions cold = BaseOptions(apps::kDbTestEntry);
  cold.warmup_instructions = 4000;
  CampaignOptions snap = cold;
  snap.snapshot = true;
  CampaignReport cold_report = RunCampaign(setup, scenarios, cold);
  CampaignReport snap_report = RunCampaign(setup, scenarios, snap);
  ExpectReportsIdentical(cold_report, snap_report);
  // The window really moved: every scenario executed at least the prefix.
  for (const ScenarioResult& r : snap_report.results) {
    EXPECT_GE(r.instructions, 4000u);
  }
}

// Scenario-level entry/heap overrides (and plans that name the entry
// symbol itself) cannot use the worker snapshot; they must silently fall
// back to cold execution, not diverge or fail.
TEST(SnapshotDiff, IncompatibleScenariosFallBackCold) {
  auto setup = apps::DbSuiteMachineSetup();
  auto scenarios = MakeScenarios(4, 0.05, 53);
  scenarios[1].heap_cap_bytes = 1 << 18;  // override: snapshot-incompatible
  core::FunctionTrigger on_entry;
  on_entry.function = apps::kDbTestEntry;  // interposes the entry symbol
  on_entry.mode = core::FunctionTrigger::Mode::CallCount;
  on_entry.inject_call = 1;
  on_entry.retval = -1;
  scenarios[2].plan.triggers.push_back(on_entry);
  CampaignOptions cold = BaseOptions(apps::kDbTestEntry);
  CampaignOptions snap = cold;
  snap.snapshot = true;
  ExpectReportsIdentical(RunCampaign(setup, scenarios, cold),
                         RunCampaign(setup, scenarios, snap));
}

// PlanRunner (the explorer's minimization oracle) shares RunScenarioOn, so
// one-off plan runs must also be identical under snapshot execution —
// including right after Machine::Reset invalidated the live processes
// (PlanRunner's machine is reused across Run calls).
TEST(SnapshotDiff, PlanRunnerIdenticalAndSurvivesReset) {
  auto profiles = std::make_shared<const std::vector<core::FaultProfile>>(
      apps::LibcProfiles());
  CampaignOptions cold = BaseOptions(apps::kPidginEntry);
  CampaignOptions snap = cold;
  snap.snapshot = true;
  PlanRunner cold_runner(apps::PidginMachineSetup(), profiles, cold);
  PlanRunner snap_runner(apps::PidginMachineSetup(), profiles, snap);
  auto scenarios = MakeScenarios(6, 0.1, 61);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE("plan " + std::to_string(i));
    ScenarioResult a = cold_runner.Run(scenarios[i].plan, scenarios[i].name);
    ScenarioResult b = snap_runner.Run(scenarios[i].plan, scenarios[i].name);
    ExpectResultsIdentical(a, b);
  }
}

// The superblock engine hoists instruction-count and coverage accounting
// to one update per fused span, so a snapshot taken after a warmup prefix
// (a pc that is almost never on a superblock boundary) is the adversarial
// case: the exact per-instruction counter and coverage bitmaps must be
// re-materialized at the snapshot point. Every engine must produce the
// same report, cold or restored — nine runs, one truth.
TEST(SnapshotDiff, WarmupSnapshotIdenticalAcrossExecEngines) {
  auto setup = apps::DbSuiteMachineSetup();
  auto scenarios = MakeScenarios(6, 0.1, 71);
  CampaignReport baseline;
  bool have_baseline = false;
  for (vm::ExecMode mode : {vm::ExecMode::Superblock, vm::ExecMode::Predecoded,
                            vm::ExecMode::Reference}) {
    SCOPED_TRACE(vm::ExecModeName(mode));
    CampaignOptions cold = BaseOptions(apps::kDbTestEntry);
    cold.exec_mode = mode;
    cold.warmup_instructions = 4321;  // deliberately not quantum-aligned
    CampaignOptions snap = cold;
    snap.snapshot = true;
    CampaignReport cold_report = RunCampaign(setup, scenarios, cold);
    CampaignReport snap_report = RunCampaign(setup, scenarios, snap);
    ExpectReportsIdentical(cold_report, snap_report);
    if (have_baseline) {
      ExpectReportsIdentical(snap_report, baseline);
    } else {
      baseline = std::move(snap_report);
      have_baseline = true;
    }
  }
}

// ---- snapshot trees -----------------------------------------------------

/// Spread per-scenario fault windows round-robin over `windows` (deeper
/// than, or equal to, the campaign-wide warmup).
void AssignWindows(std::vector<Scenario>* scenarios,
                   const std::vector<uint64_t>& windows) {
  for (size_t i = 0; i < scenarios->size(); ++i) {
    (*scenarios)[i].warmup_instructions = windows[i % windows.size()];
  }
}

// Tree execution with per-scenario fault windows must be bit-identical to
// both cold execution and the flat snapshot (which replays each window's
// suffix from the shared snapshot point).
TEST(SnapshotTree, IdenticalToColdAndFlatAcrossWindows) {
  auto setup = apps::DbSuiteMachineSetup();
  auto scenarios = MakeScenarios(9, 0.05, 83);
  AssignWindows(&scenarios, {4000, 9000, 14000});
  CampaignOptions cold = BaseOptions(apps::kDbTestEntry);
  cold.warmup_instructions = 4000;
  CampaignOptions flat = cold;
  flat.snapshot = true;
  CampaignOptions tree = cold;
  tree.snapshot_tree = true;
  CampaignReport cold_report = RunCampaign(setup, scenarios, cold);
  CampaignReport flat_report = RunCampaign(setup, scenarios, flat);
  CampaignReport tree_report = RunCampaign(setup, scenarios, tree);
  ExpectReportsIdentical(cold_report, flat_report);
  ExpectReportsIdentical(cold_report, tree_report);
  // Every scenario rode a snapshot — no silent cold fallbacks.
  EXPECT_EQ(flat_report.snapshot_fallbacks, 0u);
  EXPECT_EQ(tree_report.snapshot_fallbacks, 0u);
  EXPECT_TRUE(tree_report.snapshot_requested);
  EXPECT_FALSE(cold_report.snapshot_requested);
}

// Tree-vs-cold report identity must hold for any jobs count: each worker
// grows its own window nodes, but results depend only on the scenario.
TEST(SnapshotTree, JobsInvariant) {
  auto setup = apps::DbSuiteMachineSetup();
  auto scenarios = MakeScenarios(12, 0.05, 89);
  AssignWindows(&scenarios, {4000, 10000});
  CampaignOptions opts = BaseOptions(apps::kDbTestEntry);
  opts.warmup_instructions = 4000;
  opts.snapshot_tree = true;
  CampaignReport one = RunCampaign(setup, scenarios, opts);
  opts.jobs = 4;
  CampaignReport four = RunCampaign(setup, scenarios, opts);
  ExpectReportsIdentical(one, four);
  EXPECT_EQ(one.snapshot_fallbacks, four.snapshot_fallbacks);
}

// PushSnapshot at a window that is almost never on a superblock boundary:
// every execution engine must round-trip the mid-superblock node and
// produce one truth, cold or tree-restored.
TEST(SnapshotTree, MidRunNodesIdenticalAcrossExecEngines) {
  auto setup = apps::DbSuiteMachineSetup();
  auto scenarios = MakeScenarios(6, 0.1, 97);
  AssignWindows(&scenarios, {4321, 8765, 13131});
  CampaignReport baseline;
  bool have_baseline = false;
  for (vm::ExecMode mode : {vm::ExecMode::Superblock, vm::ExecMode::Predecoded,
                            vm::ExecMode::Reference}) {
    SCOPED_TRACE(vm::ExecModeName(mode));
    CampaignOptions cold = BaseOptions(apps::kDbTestEntry);
    cold.exec_mode = mode;
    cold.warmup_instructions = 4321;
    CampaignOptions tree = cold;
    tree.snapshot_tree = true;
    CampaignReport cold_report = RunCampaign(setup, scenarios, cold);
    CampaignReport tree_report = RunCampaign(setup, scenarios, tree);
    ExpectReportsIdentical(cold_report, tree_report);
    if (have_baseline) {
      ExpectReportsIdentical(tree_report, baseline);
    } else {
      baseline = std::move(tree_report);
      have_baseline = true;
    }
  }
}

// Snapshot-incompatible scenarios (entry/heap overrides, windows shallower
// than the shared snapshot) fall back to cold execution — identically, and
// counted in the report.
TEST(SnapshotTree, IncompatibleScenariosFallBackColdAndAreCounted) {
  auto setup = apps::DbSuiteMachineSetup();
  auto scenarios = MakeScenarios(5, 0.05, 101);
  AssignWindows(&scenarios, {6000});
  scenarios[1].heap_cap_bytes = 1 << 18;       // snapshot-incompatible
  scenarios[3].warmup_instructions = 1000;     // before the shared window
  CampaignOptions cold = BaseOptions(apps::kDbTestEntry);
  cold.warmup_instructions = 4000;
  CampaignOptions tree = cold;
  tree.snapshot_tree = true;
  CampaignReport cold_report = RunCampaign(setup, scenarios, cold);
  CampaignReport tree_report = RunCampaign(setup, scenarios, tree);
  ExpectReportsIdentical(cold_report, tree_report);
  EXPECT_EQ(tree_report.snapshot_fallbacks, 2u);
  // The fallback count is part of the jobs-invariant text summary.
  EXPECT_NE(tree_report.ToText().find("snapshot fallbacks (ran cold): 2 of 5"),
            std::string::npos)
      << tree_report.ToText();
  // ...but only when snapshot execution was requested at all.
  EXPECT_EQ(cold_report.ToText().find("snapshot fallbacks"), std::string::npos);
}

// Fork-windows exploration (mutants open their fault window at the parent's
// trigger point) is a search-semantics change, not an execution-mode one:
// the same exploration must be bit-identical under cold, flat-snapshot,
// and tree execution, and crash minimization must still reproduce.
TEST(SnapshotTree, ExplorerForkWindowsIdenticalAcrossModes) {
  ExplorerOptions eopts;
  eopts.rounds = 2;
  eopts.scenarios_per_round = 6;
  eopts.seed = 5;
  eopts.fork_windows = true;
  eopts.campaign = BaseOptions(apps::kPidginEntry);
  Explorer cold(apps::PidginMachineSetup(), apps::LibcProfiles(), eopts);
  ExplorerReport cold_report = cold.Explore();
  eopts.campaign.snapshot = true;
  Explorer flat(apps::PidginMachineSetup(), apps::LibcProfiles(), eopts);
  ExplorerReport flat_report = flat.Explore();
  eopts.campaign.snapshot = false;
  eopts.campaign.snapshot_tree = true;
  Explorer tree(apps::PidginMachineSetup(), apps::LibcProfiles(), eopts);
  ExplorerReport tree_report = tree.Explore();

  for (const ExplorerReport* r : {&flat_report, &tree_report}) {
    EXPECT_EQ(cold_report.coverage, r->coverage);
    EXPECT_EQ(cold_report.union_offsets(), r->union_offsets());
    ASSERT_EQ(cold_report.corpus.size(), r->corpus.size());
    for (size_t i = 0; i < cold_report.corpus.size(); ++i) {
      EXPECT_EQ(cold_report.corpus[i].ToXml(), r->corpus[i].ToXml());
    }
    ASSERT_EQ(cold_report.crashes.size(), r->crashes.size());
    for (size_t i = 0; i < cold_report.crashes.size(); ++i) {
      EXPECT_EQ(cold_report.crashes[i].hash, r->crashes[i].hash);
      EXPECT_EQ(cold_report.crashes[i].window, r->crashes[i].window);
      EXPECT_EQ(cold_report.crashes[i].minimized.ToXml(),
                r->crashes[i].minimized.ToXml());
      EXPECT_EQ(cold_report.crashes[i].reproduces, r->crashes[i].reproduces);
    }
  }
  // Minimized reproducers must re-verify — the window travelled with them.
  for (const CrashReport& cr : cold_report.crashes) {
    EXPECT_TRUE(cr.reproduces) << cr.signature;
  }
}

// Explorer end-to-end: coverage-guided rounds + triage + minimization are
// bit-identical whether scenarios execute cold or via snapshot restore.
TEST(SnapshotDiff, ExplorerIdenticalUnderSnapshot) {
  ExplorerOptions eopts;
  eopts.rounds = 2;
  eopts.scenarios_per_round = 6;
  eopts.seed = 5;
  eopts.campaign = BaseOptions(apps::kPidginEntry);
  Explorer cold(apps::PidginMachineSetup(), apps::LibcProfiles(), eopts);
  ExplorerReport cold_report = cold.Explore();
  eopts.campaign.snapshot = true;
  Explorer snap(apps::PidginMachineSetup(), apps::LibcProfiles(), eopts);
  ExplorerReport snap_report = snap.Explore();

  EXPECT_EQ(cold_report.coverage, snap_report.coverage);
  EXPECT_EQ(cold_report.union_offsets(), snap_report.union_offsets());
  ASSERT_EQ(cold_report.corpus.size(), snap_report.corpus.size());
  for (size_t i = 0; i < cold_report.corpus.size(); ++i) {
    EXPECT_EQ(cold_report.corpus[i].ToXml(), snap_report.corpus[i].ToXml());
  }
  ASSERT_EQ(cold_report.crashes.size(), snap_report.crashes.size());
  for (size_t i = 0; i < cold_report.crashes.size(); ++i) {
    EXPECT_EQ(cold_report.crashes[i].hash, snap_report.crashes[i].hash);
    EXPECT_EQ(cold_report.crashes[i].minimized.ToXml(),
              snap_report.crashes[i].minimized.ToXml());
    EXPECT_EQ(cold_report.crashes[i].reproduces,
              snap_report.crashes[i].reproduces);
  }
}

}  // namespace
}  // namespace lfi::campaign
