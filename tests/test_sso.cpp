#include <gtest/gtest.h>

#include "sso/sso.hpp"

namespace lfi::sso {
namespace {

SharedObject Sample() {
  isa::CodeBuilder b;
  b.begin_function("alpha");
  b.mov_ri(isa::Reg::R0, -1);
  b.leave_ret();
  b.end_function();
  b.begin_function("helper", /*exported=*/false);
  b.ret();
  b.end_function();
  b.begin_function("beta");
  b.call_sym("read");
  b.leave_ret();
  b.end_function();
  b.reserve_tls(8);
  b.emit_data({9, 8, 7});
  return FromCodeUnit("libsample.so", b.Finish(), {"libc.so"});
}

TEST(Sso, SerializeParseRoundTrip) {
  SharedObject so = Sample();
  auto parsed = SharedObject::Parse(so.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const SharedObject& p = parsed.value();
  EXPECT_EQ(p.name, so.name);
  EXPECT_EQ(p.code, so.code);
  EXPECT_EQ(p.data, so.data);
  EXPECT_EQ(p.tls_size, so.tls_size);
  ASSERT_EQ(p.exports.size(), 2u);
  EXPECT_EQ(p.exports[0].name, "alpha");
  EXPECT_EQ(p.exports[1].name, "beta");
  ASSERT_EQ(p.locals.size(), 1u);
  ASSERT_EQ(p.imports.size(), 1u);
  EXPECT_EQ(p.imports[0], "read");
  ASSERT_EQ(p.needed.size(), 1u);
  EXPECT_EQ(p.needed[0], "libc.so");
}

TEST(Sso, RelocsRoundTrip) {
  isa::CodeBuilder b;
  b.begin_function("f", true, true);
  b.ret();
  b.end_function();
  b.reserve_code_pointer(0);
  SharedObject so = FromCodeUnit("librel.so", b.Finish());
  auto parsed = SharedObject::Parse(so.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().data_relocs.size(), 1u);
  EXPECT_EQ(parsed.value().data_relocs[0].second, 0u);
}

TEST(Sso, StripRemovesLocalsOnly) {
  SharedObject so = Sample();
  ASSERT_FALSE(so.locals.empty());
  so.Strip();
  EXPECT_TRUE(so.locals.empty());
  EXPECT_EQ(so.exports.size(), 2u);  // dynamic symbols survive strip
}

TEST(Sso, FindExport) {
  SharedObject so = Sample();
  ASSERT_NE(so.find_export("alpha"), nullptr);
  ASSERT_NE(so.find_export("beta"), nullptr);
  EXPECT_EQ(so.find_export("helper"), nullptr);  // local, not exported
  EXPECT_EQ(so.find_export("nope"), nullptr);
}

TEST(Sso, SymbolAtFindsEnclosing) {
  SharedObject so = Sample();
  const isa::Symbol* alpha = so.find_export("alpha");
  const isa::Symbol* sym = so.symbol_at(alpha->offset + 2);
  ASSERT_NE(sym, nullptr);
  EXPECT_EQ(sym->name, "alpha");
}

TEST(Sso, ParseRejectsBadMagic) {
  std::vector<uint8_t> bytes = {'X', 'X', 'X', 'X', 0, 0, 0, 0};
  EXPECT_FALSE(SharedObject::Parse(bytes).ok());
}

TEST(Sso, ParseRejectsTruncation) {
  SharedObject so = Sample();
  std::vector<uint8_t> bytes = so.Serialize();
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{9}}) {
    std::vector<uint8_t> t(bytes.begin(), bytes.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(SharedObject::Parse(t).ok()) << "cut=" << cut;
  }
}

TEST(Sso, ParseRejectsTrailingBytes) {
  std::vector<uint8_t> bytes = Sample().Serialize();
  bytes.push_back(0);
  EXPECT_FALSE(SharedObject::Parse(bytes).ok());
}

TEST(Sso, DisassemblyListsFunctions) {
  SharedObject so = Sample();
  std::string dis = so.Disassembly();
  EXPECT_NE(dis.find("<alpha>"), std::string::npos);
  EXPECT_NE(dis.find("<beta>"), std::string::npos);
  EXPECT_NE(dis.find("; read"), std::string::npos);  // import annotation
}

TEST(Sso, StrippedDisassemblyStillWorks) {
  SharedObject so = Sample();
  so.Strip();
  std::string dis = so.Disassembly();
  EXPECT_NE(dis.find("<alpha>"), std::string::npos);
}

}  // namespace
}  // namespace lfi::sso
