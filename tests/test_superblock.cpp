// The superblock engine's test oracle.
//
// ExecMode::Superblock fuses straight-line instruction runs and hoists
// coverage/instruction accounting to one update per span, so this suite
// proves — not assumes — that it is bit-identical to both the predecoded
// and reference engines:
//
//   - differential runs of the tier-1 workloads (db-suite + Pidgin):
//     instruction counts, exits, faults, coverage bitmaps, injection logs,
//     and replay XML equal across all three engines;
//   - a snapshot taken mid-superblock (warmup not on a block boundary)
//     restores the exact instruction counter and coverage;
//   - a seeded random-program differential fuzzer: every generated program
//     (branches, calls, faults, wild jumps, syscalls) must leave identical
//     registers, memory digests, instruction counts, and coverage on all
//     three engines — failures dump the program as a reproducer;
//   - property tests that the CodeCache superblock partition agrees with
//     analysis/cfg block leaders, tiles the slot space exactly, and that
//     mid-instruction jump targets fall back to DecodeOne as in the
//     predecoded engine.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "apps/dbserver.hpp"
#include "apps/pidgin.hpp"
#include "apps/workloads.hpp"
#include "core/controller.hpp"
#include "core/scenario_gen.hpp"
#include "libc/libc_builder.hpp"
#include "test_helpers.hpp"
#include "util/strings.hpp"
#include "vm/machine.hpp"
#include "vm/memory.hpp"

namespace lfi {
namespace {

using isa::CodeBuilder;
using isa::Reg;

constexpr vm::ExecMode kAllModes[] = {
    vm::ExecMode::Superblock, vm::ExecMode::Predecoded,
    vm::ExecMode::Reference};

// ---- tier-1 workload differential -------------------------------------------

/// Everything an engine run can observably produce.
struct ExecOutcome {
  vm::ProcState state = vm::ProcState::Exited;
  int64_t exit_code = 0;
  vm::Signal signal = vm::Signal::None;
  std::string fault_message;
  uint64_t total_instructions = 0;
  uint64_t proc_instructions = 0;
  std::vector<std::vector<uint32_t>> coverage;  // per module index
  std::vector<std::string> injections;          // formatted log records
  std::string replay_xml;
};

void ExpectIdentical(const ExecOutcome& fast, const ExecOutcome& ref) {
  EXPECT_EQ(fast.state, ref.state);
  EXPECT_EQ(fast.exit_code, ref.exit_code);
  EXPECT_EQ(fast.signal, ref.signal);
  EXPECT_EQ(fast.fault_message, ref.fault_message);
  EXPECT_EQ(fast.total_instructions, ref.total_instructions);
  EXPECT_EQ(fast.proc_instructions, ref.proc_instructions);
  EXPECT_EQ(fast.coverage, ref.coverage);
  EXPECT_EQ(fast.injections, ref.injections);
  EXPECT_EQ(fast.replay_xml, ref.replay_xml);
}

std::vector<std::string> FormatLog(const core::InjectionLog& log) {
  std::vector<std::string> out;
  for (const core::InjectionRecord& r : log.records()) {
    std::string line = log.function_name(r);
    line += " call=" + std::to_string(r.call_number);
    if (r.has_retval) line += " ret=" + std::to_string(r.retval);
    if (r.errno_value) line += " errno=" + std::to_string(*r.errno_value);
    if (r.call_original) line += " orig";
    for (const auto& [idx, v] : r.modified_args) {
      line += " arg" + std::to_string(idx) + "=" + std::to_string(v);
    }
    out.push_back(std::move(line));
  }
  return out;
}

/// One DB-suite regression run under a random libc faultload.
ExecOutcome RunDbSuiteOnce(vm::ExecMode mode, uint64_t seed) {
  vm::Machine machine;
  machine.SetExecMode(mode);
  apps::DbSuiteMachineSetup()(machine);
  vm::CoverageTracker* cov = machine.EnableCoverage();
  core::Controller controller(machine);
  core::Plan plan = core::GenerateRandom(apps::LibcProfiles(), 0.3, seed);
  EXPECT_TRUE(controller.Install(plan, apps::LibcProfiles()).ok());
  auto pid = machine.CreateProcess(apps::kDbTestEntry);
  ExecOutcome out;
  if (!pid.ok()) return out;
  auto info = machine.RunToCompletion(pid.value(), 50'000'000);
  out.state = info.state;
  out.exit_code = info.exit_code;
  out.signal = info.signal;
  out.fault_message = info.fault_message;
  out.total_instructions = machine.total_instructions();
  out.proc_instructions = machine.process(pid.value())->instructions();
  for (size_t m = 0; m < cov->module_count(); ++m) {
    out.coverage.push_back(cov->executed(m).ToOffsets());
  }
  out.injections = FormatLog(controller.log());
  out.replay_xml = controller.GenerateReplay().ToXml();
  return out;
}

TEST(SuperblockDiff, DbSuiteIdenticalAcrossThreeEngines) {
  for (uint64_t seed : {7u, 21u, 93u, 400u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExecOutcome ref = RunDbSuiteOnce(vm::ExecMode::Reference, seed);
    ExecOutcome pre = RunDbSuiteOnce(vm::ExecMode::Predecoded, seed);
    ExecOutcome sb = RunDbSuiteOnce(vm::ExecMode::Superblock, seed);
    ExpectIdentical(sb, ref);
    ExpectIdentical(pre, ref);
    EXPECT_GT(sb.total_instructions, 0u);
  }
}

/// The Pidgin scenario through the public workload driver, switching the
/// engine via the LFI_EXEC environment override the driver's machines
/// obey. Every leg sets the variable explicitly (an inherited LFI_EXEC
/// must not collapse two legs onto the same engine); the caller's value
/// is restored after.
apps::PidginRunResult RunPidginInMode(vm::ExecMode mode, uint64_t seed) {
  const char* prev = getenv("LFI_EXEC");
  std::string saved = prev ? prev : "";
  setenv("LFI_EXEC", vm::ExecModeName(mode), 1);
  apps::PidginRunResult r = apps::RunPidginRandomIo(0.1, seed);
  if (prev) {
    setenv("LFI_EXEC", saved.c_str(), 1);
  } else {
    unsetenv("LFI_EXEC");
  }
  return r;
}

TEST(SuperblockDiff, PidginScenarioIdenticalAcrossThreeEngines) {
  bool any_abort = false;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    apps::PidginRunResult ref = RunPidginInMode(vm::ExecMode::Reference, seed);
    for (vm::ExecMode mode :
         {vm::ExecMode::Superblock, vm::ExecMode::Predecoded}) {
      SCOPED_TRACE(vm::ExecModeName(mode));
      apps::PidginRunResult fast = RunPidginInMode(mode, seed);
      EXPECT_EQ(fast.aborted, ref.aborted);
      EXPECT_EQ(fast.deadlocked, ref.deadlocked);
      EXPECT_EQ(fast.exit_code, ref.exit_code);
      EXPECT_EQ(fast.fault_message, ref.fault_message);
      EXPECT_EQ(fast.injections, ref.injections);
      EXPECT_EQ(fast.replay.ToXml(), ref.replay.ToXml());
    }
    any_abort |= ref.aborted;
  }
  // The bug should still fire somewhere in this seed range on all engines.
  EXPECT_TRUE(any_abort);
}

// ---- snapshot taken mid-superblock ------------------------------------------

/// Warmup counts land mid-superblock almost always; this nudges one that
/// happens to sit on a boundary forward until it does not, so the test
/// exercises exactly the "counter re-materialized inside a fused span"
/// case the superblock engine must get right.
bool PcIsMidSuperblock(vm::Machine& machine, uint64_t pc) {
  const vm::LoadedModule* mod = machine.loader().module_at(pc);
  if (mod == nullptr) return false;
  const vm::CodeCache::ModuleStream* stream =
      machine.loader().code_cache().stream(mod->index);
  if (stream == nullptr) return false;
  uint32_t off = static_cast<uint32_t>(pc - mod->code_base);
  uint32_t slot = stream->slot_of_offset[off];
  if (slot == vm::CodeCache::kNoSlot) return false;
  return slot != stream->superblocks[stream->sb_of_slot[slot]].first_slot;
}

struct SnapOutcome {
  uint64_t warm_instructions = 0;
  uint64_t warm_pc = 0;
  ExecOutcome cold;      // snapshot point -> completion, first pass
  ExecOutcome restored;  // restore -> completion, second pass
};

SnapOutcome RunSnapshotRoundTrip(vm::ExecMode mode) {
  vm::Machine machine;
  machine.SetExecMode(mode);
  apps::DbSuiteMachineSetup()(machine);
  vm::CoverageTracker* cov = machine.EnableCoverage();
  SnapOutcome out;
  auto pid = machine.CreateProcess(apps::kDbTestEntry);
  EXPECT_TRUE(pid.ok());
  if (!pid.ok()) return out;
  vm::Process* proc = machine.process(pid.value());
  uint64_t warm = proc->Run(1237);
  // Nudge off superblock boundaries (and off the rare mid-warmup exit).
  for (int i = 0; i < 16 && proc->state() == vm::ProcState::Runnable &&
                  !PcIsMidSuperblock(machine, proc->pc());
       ++i) {
    warm += proc->Run(1);
  }
  EXPECT_EQ(proc->state(), vm::ProcState::Runnable);
  EXPECT_TRUE(PcIsMidSuperblock(machine, proc->pc()));
  out.warm_instructions = warm;
  out.warm_pc = proc->pc();
  machine.Snapshot();

  auto capture = [&]() {
    ExecOutcome o;
    auto info = machine.RunToCompletion(pid.value(), 50'000'000);
    o.state = info.state;
    o.exit_code = info.exit_code;
    o.signal = info.signal;
    o.fault_message = info.fault_message;
    o.total_instructions = machine.total_instructions();
    o.proc_instructions = machine.process(pid.value())->instructions();
    for (size_t m = 0; m < cov->module_count(); ++m) {
      o.coverage.push_back(cov->executed(m).ToOffsets());
    }
    return o;
  };
  out.cold = capture();
  EXPECT_TRUE(machine.RestoreSnapshot());
  // The restore must land on the exact mid-span instruction counter and
  // pc, with coverage rolled back to the snapshot's bitmaps.
  EXPECT_EQ(machine.process(pid.value())->instructions(), warm);
  EXPECT_EQ(machine.process(pid.value())->pc(), out.warm_pc);
  out.restored = capture();
  return out;
}

TEST(SuperblockSnapshot, MidSuperblockRoundTripIdenticalAcrossEngines) {
  SnapOutcome ref = RunSnapshotRoundTrip(vm::ExecMode::Reference);
  ExpectIdentical(ref.restored, ref.cold);
  for (vm::ExecMode mode :
       {vm::ExecMode::Superblock, vm::ExecMode::Predecoded}) {
    SCOPED_TRACE(vm::ExecModeName(mode));
    SnapOutcome fast = RunSnapshotRoundTrip(mode);
    // Replaying from the restore point reproduces the first pass exactly...
    ExpectIdentical(fast.restored, fast.cold);
    // ...and the whole trajectory matches the other engines.
    EXPECT_EQ(fast.warm_instructions, ref.warm_instructions);
    EXPECT_EQ(fast.warm_pc, ref.warm_pc);
    ExpectIdentical(fast.cold, ref.cold);
  }
}

// ---- seeded random-program differential fuzzer ------------------------------

/// Deterministic random program over the full ISA surface: arithmetic,
/// compares, forward/backward branches, stack traffic, loads/stores to
/// valid and wild addresses, PLT calls (including an unresolvable one),
/// indirect jumps/calls (often mid-instruction), syscalls, kcalls, raw
/// RETs, HALT and ABORT. Faults are a feature: every termination mode
/// must be bit-identical across engines.
class ProgramGen {
 public:
  explicit ProgramGen(uint64_t seed) : rng_(seed) {}

  sso::SharedObject Build() {
    CodeBuilder b;
    b.reserve_data(128);
    b.reserve_tls(16);
    size_t helpers = 1 + U(3);
    for (size_t f = 0; f < helpers; ++f) {
      b.begin_function("f" + std::to_string(f));
      EmitBody(b, 8 + U(24), helpers);
      b.mov_ri(Reg::R0, static_cast<int64_t>(U(100)));
      b.leave_ret();
      b.end_function();
    }
    b.begin_function("main");
    EmitBody(b, 16 + U(32), helpers);
    b.mov_ri(Reg::R0, static_cast<int64_t>(U(100)));
    b.leave_ret();
    b.end_function();
    return sso::FromCodeUnit("fuzz.so", b.Finish());
  }

 private:
  uint64_t U(uint64_t n) { return rng_() % n; }
  Reg R() { return static_cast<Reg>(U(8)); }  // R0..R7 only: SP/BP stay sane

  int64_t RandomAddress() {
    // The fuzz module is loaded alone, so it is module 1 (kernel is 0).
    switch (U(6)) {
      case 0: return static_cast<int64_t>(vm::kStackBase + U(vm::kStackSize));
      case 1: return static_cast<int64_t>(vm::kHeapBase + U(1 << 12));
      case 2: return static_cast<int64_t>(vm::kTlsBase + U(16));
      case 3: return static_cast<int64_t>(vm::ModuleDataBase(1) + U(128));
      case 4: return static_cast<int64_t>(vm::ModuleCodeBase(1) + U(300));
      default: return static_cast<int64_t>(rng_());  // wild
    }
  }

  void EmitBody(CodeBuilder& b, size_t n, size_t helpers) {
    std::vector<CodeBuilder::Label> labels;
    size_t nlabels = 2 + n / 8;
    for (size_t i = 0; i < nlabels; ++i) labels.push_back(b.new_label());
    size_t bound = 0;
    auto any_label = [&] { return labels[U(labels.size())]; };
    for (size_t i = 0; i < n; ++i) {
      if (bound < labels.size() && U(4) == 0) b.bind(labels[bound++]);
      switch (U(24)) {
        case 0: b.add_rr(R(), R()); break;
        case 1: b.sub_rr(R(), R()); break;
        case 2: b.mul_rr(R(), R()); break;
        case 3: b.xor_rr(R(), R()); break;
        case 4: b.add_ri(R(), static_cast<int64_t>(U(1000)) - 500); break;
        case 5: b.and_ri(R(), static_cast<int64_t>(U(255))); break;
        case 6: b.neg(R()); break;
        case 7: b.not_(R()); break;
        case 8: b.mov_rr(R(), R()); break;
        case 9:
          b.mov_ri(R(), U(3) == 0 ? RandomAddress()
                                  : static_cast<int64_t>(U(1000)));
          break;
        case 10: b.cmp_rr(R(), R()); break;
        case 11: b.cmp_ri(R(), static_cast<int64_t>(U(10))); break;
        case 12: {  // conditional branch, forward or backward
          CodeBuilder::Label l = any_label();
          switch (U(6)) {
            case 0: b.je(l); break;
            case 1: b.jne(l); break;
            case 2: b.jlt(l); break;
            case 3: b.jle(l); break;
            case 4: b.jgt(l); break;
            default: b.jge(l); break;
          }
          break;
        }
        case 13:
          if (U(3) == 0) b.jmp(any_label());
          else b.cmp_ri(R(), static_cast<int64_t>(U(5)));
          break;
        case 14: b.load(R(), R(), static_cast<int32_t>(U(64)) - 8); break;
        case 15: b.store(R(), static_cast<int32_t>(U(64)) - 8, R()); break;
        case 16:
          b.store_i(R(), static_cast<int32_t>(U(64)),
                    static_cast<int64_t>(U(1 << 16)));
          break;
        case 17:
          if (U(2) == 0) b.lea_data(R(), static_cast<int32_t>(U(120)));
          else b.lea_tls(R(), static_cast<int32_t>(U(16)));
          break;
        case 18: b.push(R()); break;
        case 19: b.pop(R()); break;
        case 20:
          switch (U(8)) {
            case 0: b.call_sym("absent_fn"); break;  // unresolved: SIGILL
            case 1: b.kcall(static_cast<uint16_t>(U(24))); break;
            case 2: b.syscall(static_cast<uint16_t>(U(40))); break;
            default:
              b.call_sym("f" + std::to_string(U(helpers)));
              break;
          }
          break;
        case 21: {  // indirect control, frequently mid-instruction
          Reg r = R();
          b.mov_ri(r, RandomAddress());
          if (U(2) == 0) b.jmp_ind(r);
          else b.call_ind(r);
          break;
        }
        case 22:
          if (U(4) == 0) b.ret();  // raw RET: pops whatever is on top
          else b.nop();
          break;
        default:
          if (U(16) == 0) b.abort();
          else if (U(16) == 0) b.halt();
          else b.lea(R(), R(), static_cast<int32_t>(U(64)) - 32);
          break;
      }
    }
    while (bound < labels.size()) b.bind(labels[bound++]);
  }

  std::mt19937_64 rng_;
};

struct FuzzOutcome {
  vm::RunOutcome run = vm::RunOutcome::AllExited;
  vm::ProcState state = vm::ProcState::Exited;
  int64_t exit_code = 0;
  vm::Signal signal = vm::Signal::None;
  std::string fault_message;
  uint64_t instructions = 0;
  uint64_t pc = 0;
  std::array<int64_t, isa::kNumRegs> regs = {};
  uint64_t mem_digest = 0;
  std::vector<std::vector<uint32_t>> coverage;

  bool operator==(const FuzzOutcome& o) const {
    return run == o.run && state == o.state && exit_code == o.exit_code &&
           signal == o.signal && fault_message == o.fault_message &&
           instructions == o.instructions && pc == o.pc && regs == o.regs &&
           mem_digest == o.mem_digest && coverage == o.coverage;
  }
};

uint64_t Fnv1a(const uint8_t* p, size_t n, uint64_t h) {
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Digest every writable byte the program can reach: stack, heap, TLS
/// (via the process's memory interface) and each module's data section.
uint64_t DigestMemory(vm::Machine& machine, vm::Process& proc) {
  uint64_t h = 1469598103934665603ull;
  uint8_t buf[4096];
  auto digest_range = [&](uint64_t base, uint64_t size) {
    for (uint64_t off = 0; off < size; off += sizeof(buf)) {
      uint64_t len = std::min<uint64_t>(sizeof(buf), size - off);
      if (proc.read_mem(base + off, buf, len)) h = Fnv1a(buf, len, h);
    }
  };
  digest_range(vm::kStackBase, vm::kStackSize);
  digest_range(vm::kHeapBase, proc.heap_bytes());
  digest_range(vm::kTlsBase, vm::kTlsSize);
  for (const auto& mod : machine.loader().modules()) {
    h = Fnv1a(mod->data_runtime.data(), mod->data_runtime.size(), h);
  }
  return h;
}

FuzzOutcome RunFuzzProgram(const sso::SharedObject& program,
                           vm::ExecMode mode) {
  vm::Machine machine;
  machine.SetExecMode(mode);
  machine.Load(program);
  vm::CoverageTracker* cov = machine.EnableCoverage();
  FuzzOutcome out;
  auto pid = machine.CreateProcess("main");
  EXPECT_TRUE(pid.ok());
  if (!pid.ok()) return out;
  out.run = machine.Run(50'000);
  vm::Process& proc = *machine.process(pid.value());
  out.state = proc.state();
  out.exit_code = proc.exit_code();
  out.signal = proc.signal();
  out.fault_message = proc.fault_message();
  out.instructions = proc.instructions();
  out.pc = proc.pc();
  for (int r = 0; r < isa::kNumRegs; ++r) {
    out.regs[r] = proc.reg(static_cast<Reg>(r));
  }
  out.mem_digest = DigestMemory(machine, proc);
  for (size_t m = 0; m < cov->module_count(); ++m) {
    out.coverage.push_back(cov->executed(m).ToOffsets());
  }
  return out;
}

/// Reproducer dump for a diverging program: seed, serialized object on
/// disk, and the full disassembly in the failure message.
std::string DumpProgram(const sso::SharedObject& so, uint64_t seed) {
  std::string path = "superblock-repro-" + std::to_string(seed) + ".sso";
  std::vector<uint8_t> bytes = so.Serialize();
  std::ofstream f(path, std::ios::binary);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  std::string out = "seed=" + std::to_string(seed) + " (written to " + path +
                    ")\n";
  auto dis = isa::Disassemble(so.code, 0, static_cast<uint32_t>(so.code.size()));
  if (dis.ok()) {
    for (const isa::Instr& ins : dis.value()) {
      out += Format("%5u: %s\n", ins.offset, ins.ToString().c_str());
    }
  }
  return out;
}

TEST(SuperblockFuzz, RandomProgramsIdenticalAcrossThreeEngines) {
  int divergences = 0;
  for (uint64_t seed = 1; seed <= 200 && divergences < 3; ++seed) {
    sso::SharedObject program = ProgramGen(seed).Build();
    FuzzOutcome ref = RunFuzzProgram(program, vm::ExecMode::Reference);
    FuzzOutcome pre = RunFuzzProgram(program, vm::ExecMode::Predecoded);
    FuzzOutcome sb = RunFuzzProgram(program, vm::ExecMode::Superblock);
    for (const auto& [name, fast] : {std::pair<const char*, FuzzOutcome&>{
                                         "superblock", sb},
                                     {"predecoded", pre}}) {
      if (fast == ref) continue;
      ++divergences;
      SCOPED_TRACE(DumpProgram(program, seed));
      SCOPED_TRACE(name);
      EXPECT_EQ(fast.run, ref.run);
      EXPECT_EQ(fast.state, ref.state);
      EXPECT_EQ(fast.exit_code, ref.exit_code);
      EXPECT_EQ(fast.signal, ref.signal);
      EXPECT_EQ(fast.fault_message, ref.fault_message);
      EXPECT_EQ(fast.instructions, ref.instructions);
      EXPECT_EQ(fast.pc, ref.pc);
      EXPECT_EQ(fast.regs, ref.regs);
      EXPECT_EQ(fast.mem_digest, ref.mem_digest);
      EXPECT_EQ(fast.coverage, ref.coverage);
    }
  }
  EXPECT_EQ(divergences, 0);
}

// ---- superblock partition properties ----------------------------------------

/// The partition must tile the instruction stream exactly: superblocks are
/// contiguous, ascending, non-empty, cover every slot once, and run_length
/// counts to the end of the enclosing superblock.
void ExpectPartitionTiles(const vm::CodeCache::ModuleStream& stream,
                          const std::string& name) {
  SCOPED_TRACE(name);
  ASSERT_EQ(stream.sb_of_slot.size(), stream.instrs.size());
  uint32_t expect_first = 0;
  for (size_t i = 0; i < stream.superblocks.size(); ++i) {
    const vm::CodeCache::Superblock& sb = stream.superblocks[i];
    EXPECT_EQ(sb.first_slot, expect_first);
    EXPECT_GT(sb.slot_count, 0u);
    for (uint32_t s = sb.first_slot; s < sb.first_slot + sb.slot_count; ++s) {
      ASSERT_EQ(stream.sb_of_slot[s], i);
      EXPECT_EQ(stream.run_length(s), sb.first_slot + sb.slot_count - s);
    }
    expect_first = sb.first_slot + sb.slot_count;
  }
  EXPECT_EQ(expect_first, stream.instrs.size());
  // start_bits has exactly one bit per decoded instruction start.
  size_t bits = 0;
  for (uint64_t w : stream.start_bits) bits += __builtin_popcountll(w);
  EXPECT_EQ(bits, stream.instrs.size());
  for (const isa::Instr& ins : stream.instrs) {
    EXPECT_TRUE((stream.start_bits[ins.offset >> 6] >> (ins.offset & 63)) & 1);
  }
}

/// Superblock entry offsets restricted to an exported function must be
/// exactly the function's CFG block leaders. CodeCache derives its leaders
/// independently (symbols, relocs, branch/call targets, post-terminator),
/// so this is a genuine cross-check against analysis/cfg.
void ExpectEntriesMatchCfg(const vm::Loader& loader,
                           const vm::LoadedModule& mod) {
  const vm::CodeCache::ModuleStream* stream =
      loader.code_cache().stream(mod.index);
  ASSERT_NE(stream, nullptr) << mod.object.name;
  std::set<uint32_t> entries;
  for (const vm::CodeCache::Superblock& sb : stream->superblocks) {
    entries.insert(stream->instrs[sb.first_slot].offset);
  }
  for (const isa::Symbol& fn : mod.object.exports) {
    if (fn.size == 0) continue;
    SCOPED_TRACE(mod.object.name + "`" + fn.name);
    auto cfg = analysis::BuildCfg(mod.object, fn);
    ASSERT_TRUE(cfg.ok()) << cfg.error();
    std::set<uint32_t> leaders;
    for (const analysis::BasicBlock& block : cfg.value().blocks) {
      leaders.insert(block.begin);
    }
    std::set<uint32_t> in_fn;
    for (uint32_t e : entries) {
      if (e >= fn.offset && e < fn.offset + fn.size) in_fn.insert(e);
    }
    EXPECT_EQ(in_fn, leaders);
  }
}

TEST(SuperblockProperty, PartitionAgreesWithCfgOnTier1Modules) {
  // Machine 1: kernel + libc + the db-suite modules. Machine 2: Pidgin.
  vm::Machine db;
  apps::DbSuiteMachineSetup()(db);
  vm::Machine pidgin;
  pidgin.Load(libc::BuildLibc());
  pidgin.Load(apps::BuildPidgin());
  for (vm::Machine* machine : {&db, &pidgin}) {
    for (const auto& mod : machine->loader().modules()) {
      const vm::CodeCache::ModuleStream* stream =
          machine->loader().code_cache().stream(mod->index);
      ASSERT_NE(stream, nullptr) << mod->object.name;
      ASSERT_FALSE(stream->instrs.empty()) << mod->object.name;
      ExpectPartitionTiles(*stream, mod->object.name);
      ExpectEntriesMatchCfg(machine->loader(), *mod);
    }
  }
}

/// A jump into the middle of an instruction has no predecoded slot; the
/// superblock engine must take the same DecodeOne fallback as predecoded
/// and fault with the exact reference message.
TEST(SuperblockProperty, MidInstructionJumpFallsBackToDecodeOne) {
  auto build = [] {
    CodeBuilder b;
    b.begin_function("main");
    // Prologue is 5 bytes (push bp; mov bp, sp); this MOV_RI sits at
    // offset 5, so its imm64 begins at offset 7. The low imm byte 0xFF is
    // not a valid opcode — jumping there must SIGILL identically on all
    // engines.
    b.mov_ri(Reg::R2, 0xFF);
    b.mov_ri(Reg::R3, static_cast<int64_t>(vm::ModuleCodeBase(1) + 7));
    b.jmp_ind(Reg::R3);
    b.leave_ret();
    b.end_function();
    return sso::FromCodeUnit("app.so", b.Finish());
  };
  auto run = [&](vm::ExecMode mode) {
    vm::Machine machine;  // kernel is module 0, app is module 1
    machine.SetExecMode(mode);
    machine.Load(build());
    return test::RunEntry(machine, "main");
  };
  test::RunResult ref = run(vm::ExecMode::Reference);
  EXPECT_EQ(ref.state, vm::ProcState::Faulted);
  EXPECT_EQ(ref.signal, vm::Signal::Ill);
  EXPECT_NE(ref.fault.find("unknown opcode"), std::string::npos) << ref.fault;
  for (vm::ExecMode mode :
       {vm::ExecMode::Superblock, vm::ExecMode::Predecoded}) {
    SCOPED_TRACE(vm::ExecModeName(mode));
    test::RunResult fast = run(mode);
    EXPECT_EQ(fast.state, ref.state);
    EXPECT_EQ(fast.signal, ref.signal);
    EXPECT_EQ(fast.fault, ref.fault);
  }
}

}  // namespace
}  // namespace lfi
