#include <gtest/gtest.h>

#include "core/trigger_engine.hpp"
#include "util/errno_table.hpp"

namespace lfi::core {
namespace {

FunctionTrigger CallCountTrigger(const std::string& fn, uint64_t n,
                                 int64_t retval, int32_t err) {
  FunctionTrigger t;
  t.function = fn;
  t.mode = FunctionTrigger::Mode::CallCount;
  t.inject_call = n;
  t.retval = retval;
  t.errno_value = err;
  return t;
}

std::vector<FaultProfile> ProfilesWith(const std::string& fn,
                                       std::vector<int64_t> errnos,
                                       int64_t retval = -1) {
  FaultProfile p;
  p.library = "libc.so";
  FunctionProfile f;
  f.name = fn;
  ProfileErrorCode ec;
  ec.retval = retval;
  ProfileSideEffect se;
  se.type = ProfileSideEffect::Type::Tls;
  se.module = "libc.so";
  se.values = errnos;
  ec.side_effects.push_back(se);
  f.error_codes.push_back(ec);
  p.functions.push_back(f);
  return {p};
}

TEST(TriggerEngine, CallCountFiresExactlyOnce) {
  Plan plan;
  plan.triggers.push_back(CallCountTrigger("read", 3, -1, E_IO));
  TriggerEngine engine(plan, {});
  EXPECT_FALSE(engine.OnCall("read", {}));
  EXPECT_FALSE(engine.OnCall("read", {}));
  auto d = engine.OnCall("read", {});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->retval, -1);
  EXPECT_EQ(d->errno_value, E_IO);
  EXPECT_FALSE(engine.OnCall("read", {}));
  EXPECT_EQ(engine.call_count("read"), 4u);
}

TEST(TriggerEngine, UnknownFunctionNeverFires) {
  Plan plan;
  plan.triggers.push_back(CallCountTrigger("read", 1, -1, E_IO));
  TriggerEngine engine(plan, {});
  EXPECT_FALSE(engine.OnCall("write", {}));
  EXPECT_FALSE(engine.has_triggers_for("write"));
  EXPECT_TRUE(engine.has_triggers_for("read"));
}

TEST(TriggerEngine, AlwaysModeFiresEveryCall) {
  Plan plan;
  FunctionTrigger t;
  t.function = "close";
  t.mode = FunctionTrigger::Mode::Always;
  t.retval = -1;
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, {});
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(engine.OnCall("close", {}));
  EXPECT_EQ(engine.injection_count(), 5u);
}

TEST(TriggerEngine, MaxInjectionsCapsFiring) {
  Plan plan;
  FunctionTrigger t;
  t.function = "close";
  t.mode = FunctionTrigger::Mode::Always;
  t.retval = -1;
  t.max_injections = 2;
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, {});
  EXPECT_TRUE(engine.OnCall("close", {}));
  EXPECT_TRUE(engine.OnCall("close", {}));
  EXPECT_FALSE(engine.OnCall("close", {}));
}

TEST(TriggerEngine, ProbabilityDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    Plan plan;
    plan.seed = seed;
    FunctionTrigger t;
    t.function = "read";
    t.mode = FunctionTrigger::Mode::Probability;
    t.probability = 0.3;
    t.retval = -1;
    plan.triggers.push_back(t);
    TriggerEngine engine(plan, {});
    std::vector<bool> fires;
    for (int i = 0; i < 100; ++i) {
      fires.push_back(engine.OnCall("read", {}).has_value());
    }
    return fires;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(TriggerEngine, ProbabilityRoughlyCalibrated) {
  Plan plan;
  plan.seed = 7;
  FunctionTrigger t;
  t.function = "read";
  t.mode = FunctionTrigger::Mode::Probability;
  t.probability = 0.1;
  t.retval = -1;
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, {});
  int fires = 0;
  for (int i = 0; i < 5000; ++i) fires += engine.OnCall("read", {}).has_value();
  EXPECT_NEAR(fires / 5000.0, 0.1, 0.03);
}

TEST(TriggerEngine, RotateCyclesThroughProfileCodes) {
  Plan plan;
  FunctionTrigger t;
  t.function = "close";
  t.mode = FunctionTrigger::Mode::Rotate;
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, ProfilesWith("close", {E_BADF, E_IO, E_INTR}));
  std::vector<int32_t> seen;
  for (int i = 0; i < 6; ++i) {
    auto d = engine.OnCall("close", {});
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->retval, -1);
    ASSERT_TRUE(d->errno_value.has_value());
    seen.push_back(*d->errno_value);
  }
  // Consecutive calls iterate the codes, then wrap (§4 exhaustive).
  EXPECT_EQ(seen[0], seen[3]);
  EXPECT_EQ(seen[1], seen[4]);
  EXPECT_EQ(seen[2], seen[5]);
  EXPECT_EQ((std::set<int32_t>{seen[0], seen[1], seen[2]}),
            (std::set<int32_t>{E_BADF, E_IO, E_INTR}));
}

TEST(TriggerEngine, RandomDrawUsesProfileCodes) {
  Plan plan;
  plan.seed = 3;
  FunctionTrigger t;
  t.function = "close";
  t.mode = FunctionTrigger::Mode::Always;  // no explicit retval
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, ProfilesWith("close", {E_BADF, E_IO}));
  std::set<int32_t> seen;
  for (int i = 0; i < 50; ++i) {
    auto d = engine.OnCall("close", {});
    ASSERT_TRUE(d.has_value());
    seen.insert(*d->errno_value);
  }
  EXPECT_EQ(seen, (std::set<int32_t>{E_BADF, E_IO}));
}

TEST(TriggerEngine, NoProfileNoRetvalPassesThrough) {
  Plan plan;
  FunctionTrigger t;
  t.function = "mystery";
  t.mode = FunctionTrigger::Mode::Always;
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, {});
  auto d = engine.OnCall("mystery", {});
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->has_retval);
  EXPECT_TRUE(d->call_original);  // §6.4 overhead configuration
}

TEST(TriggerEngine, StackTraceConditionMatchesSymbols) {
  Plan plan;
  FunctionTrigger t = CallCountTrigger("readdir", 1, 0, E_BADF);
  FrameCondition frame;
  frame.symbol = "refresh_files";
  t.stacktrace.push_back(frame);
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, {});

  // Wrong caller: no injection (call_count still advances).
  auto wrong = engine.OnCall("readdir", [] {
    return Backtrace{{0x1000, "other_fn"}};
  });
  EXPECT_FALSE(wrong.has_value());

  Plan plan2 = plan;
  TriggerEngine engine2(plan2, {});
  auto right = engine2.OnCall("readdir", [] {
    return Backtrace{{0x1000, "refresh_files"}, {0x2000, "main"}};
  });
  EXPECT_TRUE(right.has_value());
}

TEST(TriggerEngine, StackTraceConditionMatchesAddresses) {
  Plan plan;
  FunctionTrigger t = CallCountTrigger("readdir", 1, 0, E_BADF);
  FrameCondition f0;
  f0.address = 0xb824490;
  FrameCondition f1;
  f1.symbol = "refresh_files";
  t.stacktrace = {f0, f1};
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, {});
  auto d = engine.OnCall("readdir", [] {
    return Backtrace{{0xb824490, "helper"}, {0x99, "refresh_files"}};
  });
  EXPECT_TRUE(d.has_value());
}

TEST(TriggerEngine, ShortBacktraceFailsDeepCondition) {
  Plan plan;
  FunctionTrigger t = CallCountTrigger("f", 1, -1, E_IO);
  FrameCondition a, b;
  a.symbol = "x";
  b.symbol = "y";
  t.stacktrace = {a, b};
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, {});
  EXPECT_FALSE(engine.OnCall("f", [] {
    return Backtrace{{0x1, "x"}};
  }).has_value());
}

TEST(TriggerEngine, NeedsBacktraceOnlyWithConditions) {
  Plan plan;
  plan.triggers.push_back(CallCountTrigger("a", 1, -1, E_IO));
  FunctionTrigger t = CallCountTrigger("b", 1, -1, E_IO);
  FrameCondition f;
  f.symbol = "caller";
  t.stacktrace.push_back(f);
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, {});
  EXPECT_FALSE(engine.needs_backtrace("a"));
  EXPECT_TRUE(engine.needs_backtrace("b"));
}

TEST(TriggerEngine, FirstMatchingTriggerWins) {
  Plan plan;
  plan.triggers.push_back(CallCountTrigger("f", 1, -7, E_IO));
  plan.triggers.push_back(CallCountTrigger("f", 1, -8, E_BADF));
  TriggerEngine engine(plan, {});
  auto d = engine.OnCall("f", {});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->retval, -7);
  EXPECT_EQ(d->trigger_index, 0u);
}

TEST(TriggerEngine, ModificationsExposedOnDecision) {
  Plan plan;
  FunctionTrigger t;
  t.function = "read";
  t.mode = FunctionTrigger::Mode::CallCount;
  t.inject_call = 1;
  t.call_original = true;
  ArgModification m;
  m.argument = 3;
  m.op = ArgModification::Op::Sub;
  m.value = 10;
  t.modifications.push_back(m);
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, {});
  auto d = engine.OnCall("read", {});
  ASSERT_TRUE(d.has_value());
  ASSERT_NE(d->modifications, nullptr);
  ASSERT_EQ(d->modifications->size(), 1u);
  EXPECT_TRUE(d->call_original);
}

TEST(TriggerEngine, FunctionsListsAllTriggered) {
  Plan plan;
  plan.triggers.push_back(CallCountTrigger("a", 1, -1, E_IO));
  plan.triggers.push_back(CallCountTrigger("b", 1, -1, E_IO));
  plan.triggers.push_back(CallCountTrigger("a", 2, -1, E_IO));
  TriggerEngine engine(plan, {});
  auto fns = engine.functions();
  EXPECT_EQ(std::set<std::string>(fns.begin(), fns.end()),
            (std::set<std::string>{"a", "b"}));
}

TEST(TriggerEngine, HotPathHandleMatchesStringApi) {
  // The install-time contract: resolve the handle once, then OnCall on the
  // handle behaves exactly like the string wrapper.
  auto make_plan = [] {
    Plan plan;
    plan.seed = 9;
    plan.triggers.push_back(CallCountTrigger("read", 2, -1, E_IO));
    plan.triggers.push_back(CallCountTrigger("read", 5, -2, E_BADF));
    FunctionTrigger p;
    p.function = "read";
    p.mode = FunctionTrigger::Mode::Probability;
    p.probability = 0.25;
    p.retval = -3;
    plan.triggers.push_back(p);
    return plan;
  };
  TriggerEngine by_handle(make_plan(), {});
  TriggerEngine by_string(make_plan(), {});
  TriggerEngine::FunctionState* handle = by_handle.state_for("read");
  ASSERT_NE(handle, nullptr);
  for (int i = 0; i < 50; ++i) {
    auto a = by_handle.OnCall(*handle, {});
    auto b = by_string.OnCall("read", {});
    ASSERT_EQ(a.has_value(), b.has_value()) << "call " << i;
    if (a) {
      EXPECT_EQ(a->retval, b->retval);
      EXPECT_EQ(a->trigger_index, b->trigger_index);
    }
  }
  EXPECT_EQ(handle->call_count(), 50u);
  EXPECT_EQ(by_handle.injection_count(), by_string.injection_count());
}

TEST(TriggerEngine, StateForUnknownFunctionIsNull) {
  Plan plan;
  plan.triggers.push_back(CallCountTrigger("read", 1, -1, E_IO));
  TriggerEngine engine(plan, {});
  EXPECT_EQ(engine.state_for("write"), nullptr);
  EXPECT_NE(engine.state_for("read"), nullptr);
}

TEST(TriggerEngine, InspectStateExposesPlumbingShape) {
  // The narrow test accessor: counts only, no mutable internals.
  Plan plan;
  plan.triggers.push_back(CallCountTrigger("read", 3, -1, E_IO));
  plan.triggers.push_back(CallCountTrigger("read", 8, -1, E_IO));
  FunctionTrigger st_trigger = CallCountTrigger("read", 1, -1, E_IO);
  FrameCondition frame;
  frame.symbol = "caller";
  st_trigger.stacktrace.push_back(frame);
  plan.triggers.push_back(st_trigger);
  TriggerEngine engine(plan, ProfilesWith("read", {E_IO, E_BADF}));

  auto view = engine.InspectState("read");
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->call_count, 0u);
  EXPECT_EQ(view->indexed_triggers, 2u);  // plain call-count triggers
  EXPECT_EQ(view->general_triggers, 1u);  // the stack-conditioned one
  EXPECT_EQ(view->injectables, 2u);
  EXPECT_TRUE(view->any_stack_conditions);
  EXPECT_FALSE(engine.InspectState("write").has_value());

  (void)engine.OnCall("read", {});
  EXPECT_EQ(engine.InspectState("read")->call_count, 1u);
}

TEST(TriggerEngine, IndexedTriggersFireInPlanOrderAtSameCount) {
  // Two plain call-count triggers on the same call: the earlier plan entry
  // wins, exactly like the old bucket ordering.
  Plan plan;
  plan.triggers.push_back(CallCountTrigger("f", 4, -7, E_IO));
  plan.triggers.push_back(CallCountTrigger("f", 4, -8, E_BADF));
  plan.triggers.push_back(CallCountTrigger("f", 2, -9, E_INTR));
  TriggerEngine engine(plan, {});
  EXPECT_FALSE(engine.OnCall("f", {}));
  auto second = engine.OnCall("f", {});
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->retval, -9);
  EXPECT_FALSE(engine.OnCall("f", {}));
  auto fourth = engine.OnCall("f", {});
  ASSERT_TRUE(fourth.has_value());
  EXPECT_EQ(fourth->retval, -7);
  EXPECT_EQ(fourth->trigger_index, 0u);
}

/// Profile with one Analyzed code (retval -1) and one Assumed code
/// (retval -2) — the shape a constprop-verified function plus a
/// documentation-derived extra takes.
std::vector<FaultProfile> MixedProvenanceProfiles(const std::string& fn) {
  FaultProfile p;
  p.library = "libc.so";
  FunctionProfile f;
  f.name = fn;
  ProfileErrorCode analyzed;
  analyzed.retval = -1;
  analyzed.provenance = Provenance::Analyzed;
  ProfileErrorCode assumed;
  assumed.retval = -2;
  f.error_codes.push_back(analyzed);
  f.error_codes.push_back(assumed);
  p.functions.push_back(f);
  return {p};
}

TEST(TriggerEngine, FeasibleOnlyDrawsOnlyAnalyzedCodes) {
  Plan plan;
  FunctionTrigger t;
  t.function = "close";
  t.mode = FunctionTrigger::Mode::Rotate;
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, MixedProvenanceProfiles("close"),
                       /*feasible_only=*/true);
  for (int i = 0; i < 6; ++i) {
    auto d = engine.OnCall("close", {});
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->retval, -1);  // the Assumed -2 must never be drawn
  }
}

TEST(TriggerEngine, WithoutFeasibleOnlyBothProvenancesRotate) {
  Plan plan;
  FunctionTrigger t;
  t.function = "close";
  t.mode = FunctionTrigger::Mode::Rotate;
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, MixedProvenanceProfiles("close"));
  std::set<int64_t> retvals;
  for (int i = 0; i < 4; ++i) {
    auto d = engine.OnCall("close", {});
    ASSERT_TRUE(d.has_value());
    retvals.insert(d->retval);
  }
  EXPECT_EQ(retvals, (std::set<int64_t>{-1, -2}));
}

TEST(TriggerEngine, FeasibleOnlySparesUnanalyzedFunctions) {
  // All codes Assumed: the gate must not empty the set — unanalyzed
  // functions keep full fault coverage.
  Plan plan;
  FunctionTrigger t;
  t.function = "close";
  t.mode = FunctionTrigger::Mode::Rotate;
  plan.triggers.push_back(t);
  TriggerEngine engine(plan, ProfilesWith("close", {E_BADF, E_IO}),
                       /*feasible_only=*/true);
  auto d = engine.OnCall("close", {});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->retval, -1);
}

}  // namespace
}  // namespace lfi::core
