#include <gtest/gtest.h>
#include <locale.h>

#include "util/errno_table.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace lfi {
namespace {

// ---- Result -----------------------------------------------------------------

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Err("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "boom");
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.error().empty());
}

TEST(Status, ErrorCarriesMessage) {
  Status s = Err("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error(), "bad");
}

// ---- Rng ----------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowZeroBoundIsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-1.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ZeroSeedStillWorks) {
  Rng rng(0);
  EXPECT_NE(rng.next(), 0u);
}

// ---- strings -------------------------------------------------------------------

TEST(Strings, FormatBasics) {
  EXPECT_EQ(Format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(Format("%s", ""), "");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingle) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
}

TEST(Strings, ParseIntDecimal) {
  int64_t v = 0;
  ASSERT_TRUE(ParseInt("-42", &v));
  EXPECT_EQ(v, -42);
  ASSERT_TRUE(ParseInt("  17 ", &v));
  EXPECT_EQ(v, 17);
}

TEST(Strings, ParseIntHex) {
  int64_t v = 0;
  ASSERT_TRUE(ParseInt("0xff", &v));
  EXPECT_EQ(v, 255);
  ASSERT_TRUE(ParseInt("-0x10", &v));
  EXPECT_EQ(v, -16);
}

TEST(Strings, ParseIntRejectsGarbage) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt("", &v));
  EXPECT_FALSE(ParseInt("abc", &v));
  EXPECT_FALSE(ParseInt("12x", &v));
  EXPECT_FALSE(ParseInt("-", &v));
  // strtoull would skip whitespace between the sign and the digits.
  EXPECT_FALSE(ParseInt("- 5", &v));
  EXPECT_FALSE(ParseInt("-\t17", &v));
  EXPECT_FALSE(ParseInt("+5", &v));
}

TEST(Strings, ParseIntRejectsOverflowInsteadOfWrapping) {
  int64_t v = 0;
  ASSERT_TRUE(ParseInt("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  ASSERT_TRUE(ParseInt("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
  // One past either end used to wrap through the uint64 -> int64 cast.
  EXPECT_FALSE(ParseInt("9223372036854775808", &v));
  EXPECT_FALSE(ParseInt("-9223372036854775809", &v));
  EXPECT_FALSE(ParseInt("0xffffffffffffffff", &v));
  EXPECT_FALSE(ParseInt("99999999999999999999", &v));
}

TEST(Strings, ParseUint) {
  uint64_t v = 0;
  ASSERT_TRUE(ParseUint("0", &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(ParseUint("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  ASSERT_TRUE(ParseUint("0xffffffffffffffff", &v));
  EXPECT_EQ(v, UINT64_MAX);
  ASSERT_TRUE(ParseUint("  17 ", &v));
  EXPECT_EQ(v, 17u);
  EXPECT_FALSE(ParseUint("-1", &v));
  EXPECT_FALSE(ParseUint("+1", &v));
  EXPECT_FALSE(ParseUint("", &v));
  EXPECT_FALSE(ParseUint("12x", &v));
  EXPECT_FALSE(ParseUint("18446744073709551616", &v));
}

TEST(Strings, ParseDouble) {
  double d = 0;
  ASSERT_TRUE(ParseDouble("0.25", &d));
  EXPECT_DOUBLE_EQ(d, 0.25);
  ASSERT_TRUE(ParseDouble("1e-3", &d));
  EXPECT_DOUBLE_EQ(d, 1e-3);
  ASSERT_TRUE(ParseDouble("-2.5", &d));
  EXPECT_DOUBLE_EQ(d, -2.5);
  ASSERT_TRUE(ParseDouble(" 1 ", &d));
  EXPECT_DOUBLE_EQ(d, 1.0);
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("zero.five", &d));
  EXPECT_FALSE(ParseDouble("0.5x", &d));
  EXPECT_FALSE(ParseDouble("nan", &d));
  EXPECT_FALSE(ParseDouble("inf", &d));
  // Locale independence: the separator is '.', never ','.
  EXPECT_FALSE(ParseDouble("0,5", &d));
}

// CLI flag parsing regressions. The old tools/lfi_cli.cpp helpers sat on
// raw strtoull/strtod: "--jobs -5" wrapped to 18446744073709551611 and was
// accepted, "--seed 12x" silently became 12, leading whitespace passed,
// and probability parsing was locale-dependent. The strict helpers reject
// all of that and keep the flag name in the error.
TEST(Strings, ParseCountFlagRejectsSignWrap) {
  auto v = ParseCountFlag("--jobs", "-5");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.error().find("--jobs"), std::string::npos);
  EXPECT_FALSE(ParseCountFlag("--jobs", "+5").ok());
}

TEST(Strings, ParseCountFlagRejectsWhitespaceAndJunk) {
  EXPECT_FALSE(ParseCountFlag("--seed", " 5").ok());
  EXPECT_FALSE(ParseCountFlag("--seed", "5 ").ok());
  EXPECT_FALSE(ParseCountFlag("--seed", "12x").ok());
  EXPECT_FALSE(ParseCountFlag("--seed", "abc").ok());
  EXPECT_FALSE(ParseCountFlag("--seed", "").ok());
  EXPECT_FALSE(ParseCountFlag("--seed", "18446744073709551616").ok());
}

TEST(Strings, ParseCountFlagRoundTripsAndBounds) {
  auto v = ParseCountFlag("--seed", "18446744073709551615");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), UINT64_MAX);
  auto bounded = ParseCountFlag("--jobs", "1000001", 1'000'000);
  ASSERT_FALSE(bounded.ok());
  EXPECT_NE(bounded.error().find("at most"), std::string::npos);
  auto ok = ParseCountFlag("--jobs", "8", 1'000'000);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 8u);
}

TEST(Strings, ParseProbabilityFlagStrict) {
  auto p = ParseProbabilityFlag("--random", "0.5");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 0.5);
  auto one = ParseProbabilityFlag("--random", "1");
  ASSERT_TRUE(one.ok());
  EXPECT_DOUBLE_EQ(one.value(), 1.0);
  EXPECT_FALSE(ParseProbabilityFlag("--random", "0").ok());
  EXPECT_FALSE(ParseProbabilityFlag("--random", "-0.5").ok());
  EXPECT_FALSE(ParseProbabilityFlag("--random", "1.5").ok());
  EXPECT_FALSE(ParseProbabilityFlag("--random", "0.5x").ok());
  EXPECT_FALSE(ParseProbabilityFlag("--random", " 0.5").ok());
  EXPECT_FALSE(ParseProbabilityFlag("--random", "nan").ok());
  auto err = ParseProbabilityFlag("--probability", "oops");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.error().find("--probability"), std::string::npos);
}

// ParseProbabilityFlag must parse "0.5" whatever the host locale says the
// decimal separator is — the same defect class PR 5's ParseDouble fixed
// for plan XML. Comma-decimal locales are often absent in CI images, so
// skip (not fail) when none can be installed.
TEST(Strings, ParseProbabilityFlagLocaleIndependent) {
  locale_t comma = newlocale(LC_NUMERIC_MASK, "de_DE.UTF-8", nullptr);
  if (comma == nullptr) comma = newlocale(LC_NUMERIC_MASK, "fr_FR.UTF-8", nullptr);
  if (comma == nullptr) GTEST_SKIP() << "no comma-decimal locale installed";
  locale_t old = uselocale(comma);
  auto p = ParseProbabilityFlag("--random", "0.5");
  uselocale(old);
  freelocale(comma);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 0.5);
}

TEST(Strings, HexFormatting) {
  EXPECT_EQ(Hex(255), "0xff");
  EXPECT_EQ(Hex(0), "0x0");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(StartsWith("x", ""));
}

// ---- errno table ---------------------------------------------------------------

TEST(ErrnoTable, PaperValuesMatchLinux) {
  // The §3.3 close example: -9/-5/-4 are EBADF/EIO/EINTR.
  EXPECT_EQ(E_BADF, 9);
  EXPECT_EQ(E_IO, 5);
  EXPECT_EQ(E_INTR, 4);
  EXPECT_EQ(E_NOMEM, 12);
}

TEST(ErrnoTable, NameRoundTrip) {
  for (int32_t v : AllErrnos()) {
    auto back = ErrnoFromName(ErrnoName(v));
    ASSERT_TRUE(back.has_value()) << ErrnoName(v);
    EXPECT_EQ(*back, v);
  }
}

TEST(ErrnoTable, WouldBlockAlias) {
  EXPECT_EQ(ErrnoFromName("EWOULDBLOCK"), E_AGAIN);
}

TEST(ErrnoTable, UnknownValueFormatted) {
  EXPECT_EQ(ErrnoName(9999), "E9999");
}

TEST(ErrnoTable, UnknownNameRejected) {
  EXPECT_FALSE(ErrnoFromName("ENOPE").has_value());
}

TEST(ErrnoTable, AllErrnosSortedUnique) {
  const auto& all = AllErrnos();
  for (size_t i = 1; i < all.size(); ++i) EXPECT_LT(all[i - 1], all[i]);
}

class ErrnoNameParam : public ::testing::TestWithParam<int32_t> {};

TEST_P(ErrnoNameParam, NamesAreUpperCaseE) {
  std::string name = ErrnoName(GetParam());
  ASSERT_FALSE(name.empty());
  EXPECT_EQ(name[0], 'E');
}

INSTANTIATE_TEST_SUITE_P(AllValues, ErrnoNameParam,
                         ::testing::ValuesIn(AllErrnos()));

}  // namespace
}  // namespace lfi
