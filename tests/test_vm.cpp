#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "vm/machine.hpp"
#include "vm/memory.hpp"

namespace lfi::vm {
namespace {

using isa::CodeBuilder;
using isa::Reg;

// ---- AddressSpace -------------------------------------------------------------

TEST(AddressSpace, ReadWriteWithinRegion) {
  std::vector<uint8_t> backing(64, 0);
  AddressSpace space;
  space.map(Region{0x1000, 64, backing.data(), true, "r"});
  ASSERT_TRUE(space.write_u64(0x1000, 0xdeadbeef));
  uint64_t v = 0;
  ASSERT_TRUE(space.read_u64(0x1000, &v));
  EXPECT_EQ(v, 0xdeadbeefu);
}

TEST(AddressSpace, RejectsOutOfRange) {
  std::vector<uint8_t> backing(64, 0);
  AddressSpace space;
  space.map(Region{0x1000, 64, backing.data(), true, "r"});
  uint64_t v = 0;
  EXPECT_FALSE(space.read_u64(0x0, &v));
  EXPECT_FALSE(space.read_u64(0x1000 + 60, &v));  // straddles the end
  EXPECT_FALSE(space.write_u64(0x2000, 1));
}

TEST(AddressSpace, RejectsWriteToReadOnly) {
  std::vector<uint8_t> backing(64, 0);
  AddressSpace space;
  space.map(Region{0x1000, 64, backing.data(), false, "ro"});
  uint64_t v = 0;
  EXPECT_TRUE(space.read_u64(0x1000, &v));
  EXPECT_FALSE(space.write_u64(0x1000, 1));
}

TEST(AddressSpace, MultipleRegionsResolve) {
  std::vector<uint8_t> a(16, 0), b(16, 0);
  AddressSpace space;
  space.map(Region{0x2000, 16, b.data(), true, "b"});
  space.map(Region{0x1000, 16, a.data(), true, "a"});
  ASSERT_TRUE(space.write_u64(0x1000, 1));
  ASSERT_TRUE(space.write_u64(0x2000, 2));
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 2);
}

// ---- basic execution ------------------------------------------------------------

/// Build a module with a single entry running `body`, then HALT-style exit.
template <typename Body>
sso::SharedObject OneFn(const std::string& entry, Body&& body) {
  CodeBuilder b;
  b.begin_function(entry);
  body(b);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("app.so", b.Finish());
}

int64_t RunAndGetExit(sso::SharedObject app, const std::string& entry) {
  test::RunResult r = test::RunProgram(std::move(app), entry);
  EXPECT_EQ(r.state, ProcState::Exited) << r.fault;
  return r.exit_code;
}

TEST(VmExec, ArithmeticChain) {
  auto app = OneFn("main", [](CodeBuilder& b) {
    b.mov_ri(Reg::R0, 10);
    b.add_ri(Reg::R0, 5);     // 15
    b.mul_ri(Reg::R0, 2);     // 30
    b.sub_ri(Reg::R0, 8);     // 22
    b.xor_ri(Reg::R0, 1);     // 23
    b.or_ri(Reg::R0, 8);      // 31
    b.and_ri(Reg::R0, 0x1f);  // 31
  });
  EXPECT_EQ(RunAndGetExit(std::move(app), "main"), 31);
}

TEST(VmExec, RegisterMoves) {
  auto app = OneFn("main", [](CodeBuilder& b) {
    b.mov_ri(Reg::R3, 7);
    b.mov_rr(Reg::R2, Reg::R3);
    b.neg(Reg::R2);
    b.not_(Reg::R2);  // -(-7)-1 = 6
    b.mov_rr(Reg::R0, Reg::R2);
  });
  EXPECT_EQ(RunAndGetExit(std::move(app), "main"), 6);
}

TEST(VmExec, ConditionalBranches) {
  // Compute sign(-5) via compares: expect -1.
  auto app = OneFn("main", [](CodeBuilder& b) {
    auto neg = b.new_label();
    auto done = b.new_label();
    b.mov_ri(Reg::R1, -5);
    b.cmp_ri(Reg::R1, 0);
    b.jlt(neg);
    b.mov_ri(Reg::R0, 1);
    b.jmp(done);
    b.bind(neg);
    b.mov_ri(Reg::R0, -1);
    b.bind(done);
  });
  EXPECT_EQ(RunAndGetExit(std::move(app), "main"), -1);
}

TEST(VmExec, LoopSumsToN) {
  // sum 1..10 = 55.
  auto app = OneFn("main", [](CodeBuilder& b) {
    auto loop = b.new_label();
    auto done = b.new_label();
    b.mov_ri(Reg::R0, 0);
    b.mov_ri(Reg::R1, 1);
    b.bind(loop);
    b.cmp_ri(Reg::R1, 10);
    b.jgt(done);
    b.add_rr(Reg::R0, Reg::R1);
    b.add_ri(Reg::R1, 1);
    b.jmp(loop);
    b.bind(done);
  });
  EXPECT_EQ(RunAndGetExit(std::move(app), "main"), 55);
}

TEST(VmExec, StackPushPop) {
  auto app = OneFn("main", [](CodeBuilder& b) {
    b.mov_ri(Reg::R1, 11);
    b.mov_ri(Reg::R2, 22);
    b.push(Reg::R1);
    b.push(Reg::R2);
    b.pop(Reg::R3);  // 22
    b.pop(Reg::R4);  // 11
    b.mov_rr(Reg::R0, Reg::R3);
    b.sub_rr(Reg::R0, Reg::R4);  // 11
  });
  EXPECT_EQ(RunAndGetExit(std::move(app), "main"), 11);
}

TEST(VmExec, LocalCallsWithArguments) {
  CodeBuilder b;
  // add2(a, b) = a + b
  b.begin_function("add2");
  b.load_arg(Reg::R1, 0);
  b.load_arg(Reg::R2, 1);
  b.mov_rr(Reg::R0, Reg::R1);
  b.add_rr(Reg::R0, Reg::R2);
  b.leave_ret();
  b.end_function();
  b.begin_function("main");
  b.mov_ri(Reg::R1, 40);
  b.mov_ri(Reg::R2, 2);
  b.call_named("add2", {Reg::R1, Reg::R2});
  b.leave_ret();
  b.end_function();
  EXPECT_EQ(RunAndGetExit(sso::FromCodeUnit("app.so", b.Finish()), "main"), 42);
}

TEST(VmExec, DataSectionLoadStore) {
  CodeBuilder b;
  uint32_t slot = b.reserve_data(8);
  b.begin_function("main");
  b.lea_data(Reg::R1, static_cast<int32_t>(slot));
  b.store_i(Reg::R1, 0, 99);
  b.load(Reg::R0, Reg::R1, 0);
  b.leave_ret();
  b.end_function();
  EXPECT_EQ(RunAndGetExit(sso::FromCodeUnit("app.so", b.Finish()), "main"), 99);
}

TEST(VmExec, TlsIsolatedPerProcess) {
  // Two processes write different TLS values; each reads its own back.
  CodeBuilder b;
  b.reserve_tls(8);
  b.begin_function("writer1");
  b.mov_ri(Reg::R1, 111);
  b.lea_tls(Reg::R2, 0);
  b.store(Reg::R2, 0, Reg::R1);
  b.lea_tls(Reg::R2, 0);
  b.load(Reg::R0, Reg::R2, 0);
  b.leave_ret();
  b.end_function();
  b.begin_function("writer2");
  b.mov_ri(Reg::R1, 222);
  b.lea_tls(Reg::R2, 0);
  b.store(Reg::R2, 0, Reg::R1);
  b.lea_tls(Reg::R2, 0);
  b.load(Reg::R0, Reg::R2, 0);
  b.leave_ret();
  b.end_function();

  Machine machine;
  machine.Load(sso::FromCodeUnit("app.so", b.Finish()));
  auto p1 = machine.CreateProcess("writer1");
  auto p2 = machine.CreateProcess("writer2");
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  machine.Run();
  EXPECT_EQ(machine.process(p1.value())->exit_code(), 111);
  EXPECT_EQ(machine.process(p2.value())->exit_code(), 222);
}

TEST(VmExec, IndirectCallThroughDataPointer) {
  CodeBuilder b;
  b.begin_function("target", true, true);
  b.mov_ri(Reg::R0, 77);
  b.ret();
  b.end_function();
  uint32_t slot = b.reserve_code_pointer(0);
  b.begin_function("main");
  b.lea_data(Reg::R1, static_cast<int32_t>(slot));
  b.load(Reg::R1, Reg::R1, 0);
  b.call_ind(Reg::R1);
  b.leave_ret();
  b.end_function();
  EXPECT_EQ(RunAndGetExit(sso::FromCodeUnit("app.so", b.Finish()), "main"), 77);
}

// ---- faults ----------------------------------------------------------------------

TEST(VmFaults, BadMemoryAccessIsSegv) {
  auto app = OneFn("main", [](CodeBuilder& b) {
    b.mov_ri(Reg::R1, 0x123);  // unmapped
    b.load(Reg::R0, Reg::R1, 0);
  });
  test::RunResult r = test::RunProgram(std::move(app), "main");
  EXPECT_EQ(r.state, ProcState::Faulted);
  EXPECT_EQ(r.signal, Signal::Segv);
}

TEST(VmFaults, WriteToCodeIsSegv) {
  auto app = OneFn("main", [](CodeBuilder& b) {
    b.mov_ri(Reg::R1, static_cast<int64_t>(ModuleCodeBase(1)));
    b.store_i(Reg::R1, 0, 1);
  });
  test::RunResult r = test::RunProgram(std::move(app), "main");
  EXPECT_EQ(r.state, ProcState::Faulted);
  EXPECT_EQ(r.signal, Signal::Segv);
}

TEST(VmFaults, AbortInstruction) {
  auto app = OneFn("main", [](CodeBuilder& b) { b.abort(); });
  test::RunResult r = test::RunProgram(std::move(app), "main");
  EXPECT_EQ(r.state, ProcState::Faulted);
  EXPECT_EQ(r.signal, Signal::Abort);
}

TEST(VmFaults, UnresolvedImportIsIll) {
  auto app = OneFn("main", [](CodeBuilder& b) { b.call_sym("nonexistent"); });
  test::RunResult r = test::RunProgram(std::move(app), "main");
  EXPECT_EQ(r.state, ProcState::Faulted);
  EXPECT_EQ(r.signal, Signal::Ill);
}

TEST(VmFaults, StackOverflowDetected) {
  CodeBuilder b;
  b.begin_function("main");
  auto loop = b.new_label();
  b.bind(loop);
  b.push(Reg::R0);
  b.jmp(loop);
  b.end_function();
  test::RunResult r =
      test::RunProgram(sso::FromCodeUnit("app.so", b.Finish()), "main");
  EXPECT_EQ(r.state, ProcState::Faulted);
  EXPECT_EQ(r.signal, Signal::Segv);
}

// ---- loader & interposition --------------------------------------------------------

TEST(Loader, PreloadShadowsModuleExport) {
  Machine machine;
  machine.Load(libc::BuildLibc());
  // Interpose getpid to return 4242 without calling the original.
  machine.loader().RegisterNative("getpid", [](NativeFrame&) {
    return NativeAction::Ret(4242);
  });
  CodeBuilder b;
  b.begin_function("main");
  b.call_named("getpid", {});
  b.leave_ret();
  b.end_function();
  machine.Load(sso::FromCodeUnit("app.so", b.Finish(), {"libc.so"}));
  test::RunResult r = test::RunEntry(machine, "main");
  EXPECT_EQ(r.exit_code, 4242);
}

TEST(Loader, TailCallReachesOriginal) {
  Machine machine;
  machine.Load(libc::BuildLibc());
  int calls = 0;
  machine.loader().RegisterNative(
      "getpid", [&machine, &calls](NativeFrame&) {
        ++calls;
        Target orig = machine.loader().ResolveNextName("getpid");
        return NativeAction::Tail(orig.addr);
      });
  CodeBuilder b;
  b.begin_function("main");
  b.call_named("getpid", {});
  b.leave_ret();
  b.end_function();
  machine.Load(sso::FromCodeUnit("app.so", b.Finish(), {"libc.so"}));
  test::RunResult r = test::RunEntry(machine, "main");
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(r.exit_code, 1);  // the real getpid: pid of the only process
}

TEST(Loader, InterpositionDisableRestoresOriginal) {
  Machine machine;
  machine.Load(libc::BuildLibc());
  machine.loader().RegisterNative("getpid", [](NativeFrame&) {
    return NativeAction::Ret(999);
  });
  machine.loader().SetInterpositionEnabled(false);
  CodeBuilder b;
  b.begin_function("main");
  b.call_named("getpid", {});
  b.leave_ret();
  b.end_function();
  machine.Load(sso::FromCodeUnit("app.so", b.Finish(), {"libc.so"}));
  test::RunResult r = test::RunEntry(machine, "main");
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Loader, ResolveNextSkipsNatives) {
  Machine machine;
  machine.Load(libc::BuildLibc());
  machine.loader().RegisterNative("read", [](NativeFrame&) {
    return NativeAction::Ret(0);
  });
  Target next = machine.loader().ResolveNextName("read");
  EXPECT_EQ(next.kind, Target::Kind::Code);
  Target first = machine.loader().ResolveName("read");
  EXPECT_EQ(first.kind, Target::Kind::Native);
}

TEST(Loader, SymbolizeNamesFunctions) {
  Machine machine;
  machine.Load(libc::BuildLibc());
  Target read = machine.loader().ResolveNextName("read");
  EXPECT_EQ(machine.loader().Symbolize(read.addr), "read");
  EXPECT_EQ(machine.loader().Symbolize(read.addr + 3).substr(0, 5), "read+");
}

TEST(Loader, NativeFrameReadsArguments) {
  Machine machine;
  machine.Load(libc::BuildLibc());
  int64_t seen0 = 0, seen1 = 0;
  machine.loader().RegisterNative("probe", [&](NativeFrame& f) {
    seen0 = f.arg(0);
    seen1 = f.arg(1);
    return NativeAction::Ret(0);
  });
  CodeBuilder b;
  b.begin_function("main");
  b.mov_ri(Reg::R1, 31);
  b.mov_ri(Reg::R2, 64);
  b.call_named("probe", {Reg::R1, Reg::R2});
  b.leave_ret();
  b.end_function();
  machine.Load(sso::FromCodeUnit("app.so", b.Finish()));
  test::RunEntry(machine, "main");
  EXPECT_EQ(seen0, 31);
  EXPECT_EQ(seen1, 64);
}

TEST(Loader, BacktraceReflectsCallChain) {
  Machine machine;
  machine.Load(libc::BuildLibc());
  std::vector<std::string> symbols;
  machine.loader().RegisterNative("probe", [&](NativeFrame& f) {
    for (const auto& [addr, sym] : f.backtrace()) symbols.push_back(sym);
    return NativeAction::Ret(0);
  });
  CodeBuilder b;
  b.begin_function("inner");
  b.call_named("probe", {});
  b.leave_ret();
  b.end_function();
  b.begin_function("main");
  b.call_named("inner", {});
  b.leave_ret();
  b.end_function();
  machine.Load(sso::FromCodeUnit("app.so", b.Finish()));
  test::RunEntry(machine, "main");
  ASSERT_GE(symbols.size(), 2u);
  EXPECT_EQ(symbols[0], "inner");
  EXPECT_EQ(symbols[1], "main");
}

// ---- scheduling -----------------------------------------------------------------

TEST(Machine, DetectsAllExited) {
  Machine machine;
  CodeBuilder b;
  b.begin_function("main");
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  machine.Load(sso::FromCodeUnit("app.so", b.Finish()));
  ASSERT_TRUE(machine.CreateProcess("main").ok());
  EXPECT_EQ(machine.Run(), RunOutcome::AllExited);
}

TEST(Machine, DetectsDeadlockOnSelfPipe) {
  // A process reading its own empty pipe (writer still open) can never be
  // satisfied: the machine reports deadlock rather than spinning.
  CodeBuilder b;
  uint32_t fds = b.reserve_data(16);
  b.begin_function("main");
  b.lea_data(Reg::R1, static_cast<int32_t>(fds));
  b.push(Reg::R1);
  b.call_sym("pipe");
  b.add_ri(Reg::SP, 8);
  b.lea_data(Reg::R1, static_cast<int32_t>(fds));
  b.load(Reg::R1, Reg::R1, 0);
  b.lea_data(Reg::R2, static_cast<int32_t>(fds));
  b.mov_ri(Reg::R3, 8);
  b.push(Reg::R3);
  b.push(Reg::R2);
  b.push(Reg::R1);
  b.call_sym("read");
  b.add_ri(Reg::SP, 24);
  b.leave_ret();
  b.end_function();

  Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(sso::FromCodeUnit("app.so", b.Finish(), {"libc.so"}));
  ASSERT_TRUE(machine.CreateProcess("main").ok());
  EXPECT_EQ(machine.Run(10'000'000), RunOutcome::Deadlock);
}

TEST(Machine, BudgetExhaustionReported) {
  CodeBuilder b;
  b.begin_function("main");
  auto loop = b.new_label();
  b.bind(loop);
  b.add_ri(Reg::R1, 1);
  b.jmp(loop);
  b.end_function();
  Machine machine;
  machine.Load(sso::FromCodeUnit("app.so", b.Finish()));
  ASSERT_TRUE(machine.CreateProcess("main").ok());
  EXPECT_EQ(machine.Run(10'000), RunOutcome::BudgetSpent);
  EXPECT_GE(machine.total_instructions(), 10'000u);
}

// ---- coverage --------------------------------------------------------------------

TEST(Coverage, TracksExecutedOffsetsOnly) {
  CodeBuilder b;
  b.begin_function("main");
  auto skip = b.new_label();
  b.mov_ri(Reg::R1, 1);
  b.cmp_ri(Reg::R1, 1);
  b.je(skip);
  b.mov_ri(Reg::R0, 111);  // dead code under this input
  b.bind(skip);
  b.mov_ri(Reg::R0, 0);
  b.leave_ret();
  b.end_function();

  Machine machine;
  machine.Load(libc::BuildLibc());
  size_t app_idx = machine.Load(sso::FromCodeUnit("app.so", b.Finish()));
  CoverageTracker* tracker = machine.EnableCoverage();
  test::RunEntry(machine, "main");
  const CoverageBitmap& executed = tracker->executed(app_idx);
  EXPECT_GT(executed.Count(), 0u);
  // The dead MOV_RI 111 must not be covered.
  const auto& so = machine.loader().modules()[app_idx]->object;
  auto instrs = isa::Disassemble(so.code, 0, static_cast<uint32_t>(so.code.size()));
  ASSERT_TRUE(instrs.ok());
  for (const auto& ins : instrs.value()) {
    if (ins.op == isa::Opcode::MOV_RI && ins.imm == 111) {
      EXPECT_FALSE(tracker->was_executed(app_idx, ins.offset));
    }
  }
}

// ---- regressions --------------------------------------------------------------

TEST(AddressSpace, RejectsWrappingAddressRange) {
  std::vector<uint8_t> backing(64, 0);
  AddressSpace space;
  space.map(Region{0x1000, 64, backing.data(), true, "r"});
  // addr + len wraps past 2^64 (a register holding -4): must fault, not
  // alias into the region with the highest base.
  uint64_t v = 0;
  EXPECT_FALSE(space.read_u64(UINT64_MAX - 3, &v));
  EXPECT_FALSE(space.write_u64(UINT64_MAX - 3, 1));
  EXPECT_FALSE(space.read_u64(UINT64_MAX, &v));
}

TEST(Process, AllocHeapRejectsOverflowingSize) {
  auto app = OneFn("main", [](CodeBuilder& b) { b.mov_ri(Reg::R0, 0); });
  Machine machine;
  machine.Load(libc::BuildLibc());
  machine.Load(std::move(app));
  auto pid = machine.CreateProcess("main", /*heap_cap_bytes=*/1 << 16);
  ASSERT_TRUE(pid.ok());
  Process* proc = machine.process(pid.value());
  // Near-UINT64_MAX requests used to wrap the 16-byte alignment round-up
  // (or the cursor addition) into a tiny successful grant.
  EXPECT_EQ(proc->alloc_heap(UINT64_MAX), 0u);
  EXPECT_EQ(proc->alloc_heap(UINT64_MAX - 7), 0u);
  EXPECT_EQ(proc->alloc_heap((1 << 16) + 1), 0u);
  // The failed requests must not have consumed any heap.
  uint64_t a = proc->alloc_heap(32);
  EXPECT_EQ(a, kHeapBase);
  uint64_t b = proc->alloc_heap(1 << 15);
  EXPECT_EQ(b, kHeapBase + 32);
}

TEST(Process, NativeFrameArgFaultSurfaces) {
  // main points SP at the very top of the stack, so the stub's arg(0)
  // read lands outside the mapped stack: the process must fault instead
  // of the stub silently receiving 0.
  CodeBuilder b;
  b.begin_function("main");
  b.mov_ri(Reg::SP, static_cast<int64_t>(kStackBase + kStackSize));
  b.call_sym("probe");
  b.leave_ret();
  b.end_function();
  Machine machine;
  machine.Load(sso::FromCodeUnit("app.so", b.Finish()));
  int64_t seen = -1;
  machine.loader().RegisterNative("probe", [&](NativeFrame& frame) {
    seen = frame.arg(0);
    return NativeAction::Ret(0);
  });
  test::RunResult r = test::RunEntry(machine, "main");
  EXPECT_EQ(seen, 0);
  EXPECT_EQ(r.state, ProcState::Faulted);
  EXPECT_EQ(r.signal, Signal::Segv);
  EXPECT_NE(r.fault.find("bad stack read for arg 0 of probe"),
            std::string::npos)
      << r.fault;
}

// ---- snapshot / restore -------------------------------------------------------

TEST(DirtyMap, MarksPagesAndIterates) {
  DirtyMap dm;
  dm.Enable(3 * DirtyMap::kPageSize + 100);  // 4 pages
  EXPECT_TRUE(dm.enabled());
  EXPECT_EQ(dm.DirtyCount(), 0u);
  dm.Mark(DirtyMap::kPageSize + 5, 8);  // page 1
  dm.Mark(DirtyMap::kPageSize - 2, 4);  // straddles pages 0 and 1
  std::vector<uint64_t> pages;
  dm.ForEachDirtyPage([&](uint64_t p) { pages.push_back(p); });
  EXPECT_EQ(pages, (std::vector<uint64_t>{0, 1}));
  dm.ClearAll();
  EXPECT_EQ(dm.DirtyCount(), 0u);
  dm.MarkAll();
  EXPECT_EQ(dm.DirtyCount(), 4u);
}

TEST(DirtyMap, DisabledIsInert) {
  DirtyMap dm;
  EXPECT_FALSE(dm.enabled());
  dm.Mark(0, 8);  // must be a no-op, not a crash
  EXPECT_EQ(dm.DirtyCount(), 0u);
  dm.Enable(DirtyMap::kPageSize);
  dm.Mark(0, 1);
  dm.Disable();
  EXPECT_FALSE(dm.enabled());
  EXPECT_EQ(dm.DirtyCount(), 0u);
}

TEST(DirtyMap, ReEnableSameSizePreservesMarks) {
  DirtyMap dm;
  dm.Enable(3 * DirtyMap::kPageSize);
  dm.Mark(DirtyMap::kPageSize, 1);
  ASSERT_EQ(dm.DirtyCount(), 1u);
  // Double-Enable at the same size: layered snapshot-tree captures re-arm
  // the journal after copying pages out, so marks recorded in between must
  // survive — a silent wipe here would lose writes.
  dm.Enable(3 * DirtyMap::kPageSize);
  EXPECT_EQ(dm.DirtyCount(), 1u);
  // Same page count, different byte size: still the same journal.
  dm.Enable(3 * DirtyMap::kPageSize - 10);
  EXPECT_EQ(dm.DirtyCount(), 1u);
  // A different page count rebuilds the journal all-clean.
  dm.Enable(5 * DirtyMap::kPageSize);
  EXPECT_TRUE(dm.enabled());
  EXPECT_EQ(dm.DirtyCount(), 0u);
}

TEST(DirtyMap, EnableAfterDisableStartsClean) {
  DirtyMap dm;
  dm.Enable(2 * DirtyMap::kPageSize);
  dm.Mark(0, 8);
  ASSERT_EQ(dm.DirtyCount(), 1u);
  dm.Disable();  // mid-journal: the marks are gone for good
  EXPECT_FALSE(dm.enabled());
  // Re-enabling at the same size after a Disable is a fresh journal, not a
  // re-enable — no stale marks may leak through.
  dm.Enable(2 * DirtyMap::kPageSize);
  EXPECT_TRUE(dm.enabled());
  EXPECT_EQ(dm.DirtyCount(), 0u);
  dm.Mark(DirtyMap::kPageSize, 1);
  EXPECT_EQ(dm.DirtyCount(), 1u);
}

TEST(DirtyMap, PartialLastPageCaptureZeroPadsAndClamps) {
  // A segment that is not a page multiple: the trailing partial page must
  // be zero-padded on capture and clamped on copy-back.
  const uint64_t bytes = DirtyMap::kPageSize + 100;
  std::vector<uint8_t> mem(bytes, 0xAB);
  PageDelta full = CaptureAllPages(mem.data(), bytes);
  ASSERT_EQ(full.page_count(), 2u);
  const uint8_t* tail = full.page(1);
  ASSERT_NE(tail, nullptr);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(tail[i], 0xAB);
  for (size_t i = 100; i < DirtyMap::kPageSize; ++i) EXPECT_EQ(tail[i], 0);

  DirtyMap dm;
  dm.Enable(bytes);
  mem[bytes - 1] = 0xCD;  // last byte of the partial page
  dm.Mark(bytes - 1, 1);
  PageDelta delta = CaptureDirtyPages(dm, mem.data(), bytes);
  ASSERT_EQ(delta.page_count(), 1u);
  EXPECT_EQ(delta.pages[0], 1u);
  EXPECT_EQ(delta.page(0), nullptr);  // clean page not captured
  ASSERT_NE(delta.page(1), nullptr);
  EXPECT_EQ(delta.page(1)[99], 0xCD);
}

TEST(DirtyMap, RestoreDirtyPagesClampsPartialTail) {
  const uint64_t bytes = DirtyMap::kPageSize + 100;
  std::vector<uint8_t> from(bytes, 0x11), to(bytes, 0x22);
  DirtyMap dm;
  dm.Enable(bytes);
  dm.Mark(DirtyMap::kPageSize, 100);  // only the partial tail page
  RestoreDirtyPages(dm, from.data(), to.data(), bytes);
  EXPECT_EQ(to[0], 0x22);  // clean page untouched
  EXPECT_EQ(to[DirtyMap::kPageSize], 0x11);
  EXPECT_EQ(to[bytes - 1], 0x11);
  EXPECT_EQ(dm.DirtyCount(), 0u);  // journal cleared by the restore
}

TEST(AddressSpace, WriteMarksRegionDirtyJournal) {
  std::vector<uint8_t> backing(2 * DirtyMap::kPageSize, 0);
  DirtyMap dm;
  dm.Enable(backing.size());
  AddressSpace space;
  space.map(Region{0x1000, backing.size(), backing.data(), true, "r", &dm});
  ASSERT_TRUE(space.write_u64(0x1000 + DirtyMap::kPageSize, 7));
  std::vector<uint64_t> pages;
  dm.ForEachDirtyPage([&](uint64_t p) { pages.push_back(p); });
  EXPECT_EQ(pages, (std::vector<uint64_t>{1}));
  // Reads do not mark.
  uint64_t v = 0;
  ASSERT_TRUE(space.read_u64(0x1000, &v));
  EXPECT_EQ(dm.DirtyCount(), 1u);
}

/// A module whose main increments a persistent data slot and exits with
/// the post-increment value: the run count is observable in module data.
sso::SharedObject CounterApp() {
  CodeBuilder b;
  uint32_t slot = b.reserve_data(8);
  b.begin_function("main");
  b.lea_data(Reg::R1, static_cast<int32_t>(slot));
  b.load(Reg::R0, Reg::R1, 0);
  b.add_ri(Reg::R0, 1);
  b.store(Reg::R1, 0, Reg::R0);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("counter.so", b.Finish());
}

TEST(MachineSnapshot, RestoreRewindsProcessAndModuleData) {
  Machine machine;
  machine.Load(CounterApp());
  EXPECT_FALSE(machine.RestoreSnapshot());  // nothing to restore yet
  auto pid = machine.CreateProcess("main");
  ASSERT_TRUE(pid.ok());
  machine.Snapshot();
  ASSERT_TRUE(machine.has_snapshot());

  auto info = machine.RunToCompletion(pid.value());
  EXPECT_EQ(info.state, ProcState::Exited);
  EXPECT_EQ(info.exit_code, 1);  // first run: counter 0 -> 1
  uint64_t first_run_instructions = machine.total_instructions();

  // Without a restore the data increment would persist (counter -> 2);
  // the snapshot rewinds both the exited process and the module data.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(machine.RestoreSnapshot());
    info = machine.RunToCompletion(pid.value());
    EXPECT_EQ(info.state, ProcState::Exited);
    EXPECT_EQ(info.exit_code, 1);
    EXPECT_EQ(machine.total_instructions(), first_run_instructions);
  }
}

TEST(MachineSnapshot, RestoreAfterResetRebuildsProcesses) {
  Machine machine;
  machine.Load(CounterApp());
  auto pid = machine.CreateProcess("main");
  ASSERT_TRUE(pid.ok());
  machine.Snapshot();
  ASSERT_EQ(machine.RunToCompletion(pid.value()).exit_code, 1);

  machine.Reset();  // destroys processes, rewrites module data wholesale
  EXPECT_TRUE(machine.processes().empty());
  ASSERT_TRUE(machine.has_snapshot());
  ASSERT_TRUE(machine.RestoreSnapshot());
  ASSERT_EQ(machine.processes().size(), 1u);
  auto info = machine.RunToCompletion(pid.value());
  EXPECT_EQ(info.state, ProcState::Exited);
  EXPECT_EQ(info.exit_code, 1);
}

TEST(MachineSnapshot, MidRunSnapshotResumesIdentically) {
  // Loop 5000 times adding 2: long enough that a 1-instruction budget
  // stops mid-run (the scheduler still executes a full quantum).
  CodeBuilder b;
  b.begin_function("main");
  b.mov_ri(Reg::R0, 0);
  b.mov_ri(Reg::R2, 5000);
  CodeBuilder::Label loop = b.new_label();
  b.bind(loop);
  b.add_ri(Reg::R0, 2);
  b.sub_ri(Reg::R2, 1);
  b.cmp_ri(Reg::R2, 0);
  b.jgt(loop);
  b.leave_ret();
  b.end_function();
  Machine machine;
  machine.Load(sso::FromCodeUnit("loop.so", b.Finish()));
  auto pid = machine.CreateProcess("main");
  ASSERT_TRUE(pid.ok());
  ASSERT_EQ(machine.Run(1), RunOutcome::BudgetSpent);  // one quantum
  uint64_t warm = machine.total_instructions();
  ASSERT_GT(warm, 0u);
  machine.Snapshot();

  auto info = machine.RunToCompletion(pid.value());
  EXPECT_EQ(info.state, ProcState::Exited);
  EXPECT_EQ(info.exit_code, 10000);
  uint64_t total = machine.total_instructions();

  ASSERT_TRUE(machine.RestoreSnapshot());
  EXPECT_EQ(machine.total_instructions(), warm);
  info = machine.RunToCompletion(pid.value());
  EXPECT_EQ(info.state, ProcState::Exited);
  EXPECT_EQ(info.exit_code, 10000);
  EXPECT_EQ(machine.total_instructions(), total);
}

TEST(MachineSnapshot, KernelStateAndCoverageRestored) {
  Machine machine;
  machine.Load(CounterApp());
  machine.kernel().add_file("/etc/pinned", {1, 2, 3});
  CoverageTracker* cov = machine.EnableCoverage();
  auto pid = machine.CreateProcess("main");
  ASSERT_TRUE(pid.ok());
  machine.Snapshot();
  ASSERT_EQ(cov->covered_total(), 0u);

  machine.RunToCompletion(pid.value());
  size_t covered = cov->covered_total();
  EXPECT_GT(covered, 0u);
  machine.kernel().add_file("/tmp/scratch", {9});

  ASSERT_TRUE(machine.RestoreSnapshot());
  EXPECT_EQ(cov->covered_total(), 0u);  // coverage rewound to the snapshot
  EXPECT_TRUE(machine.kernel().has_file("/etc/pinned"));
  EXPECT_FALSE(machine.kernel().has_file("/tmp/scratch"));
  machine.RunToCompletion(pid.value());
  EXPECT_EQ(cov->covered_total(), covered);
}

/// The 5000-iteration loop module used by the mid-run snapshot tests:
/// long enough that instruction budgets stop it mid-run.
sso::SharedObject LoopApp() {
  CodeBuilder b;
  b.begin_function("main");
  b.mov_ri(Reg::R0, 0);
  b.mov_ri(Reg::R2, 5000);
  CodeBuilder::Label loop = b.new_label();
  b.bind(loop);
  b.add_ri(Reg::R0, 2);
  b.sub_ri(Reg::R2, 1);
  b.cmp_ri(Reg::R2, 0);
  b.jgt(loop);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("loop.so", b.Finish());
}

TEST(MachineSnapshotTree, RestoreToAncestorAfterChildDivergence) {
  Machine machine;
  machine.Load(CounterApp());
  auto pid = machine.CreateProcess("main");
  ASSERT_TRUE(pid.ok());
  SnapshotId root = machine.PushSnapshot();
  ASSERT_NE(root, kNoSnapshot);
  EXPECT_EQ(machine.current_snapshot(), root);

  ASSERT_EQ(machine.RunToCompletion(pid.value()).exit_code, 1);
  SnapshotId child = machine.PushSnapshot();  // counter 1, process exited
  ASSERT_EQ(machine.snapshot_node_count(), 2u);

  // Diverge from the child: a fresh process increments the counter again.
  auto pid2 = machine.CreateProcess("main");
  ASSERT_TRUE(pid2.ok());
  ASSERT_EQ(machine.RunToCompletion(pid2.value()).exit_code, 2);

  // Back to the ancestor: the divergent writes (counter 2, second process)
  // must be fully undone even though they postdate the child node.
  ASSERT_TRUE(machine.RestoreTo(root));
  EXPECT_EQ(machine.current_snapshot(), root);
  ASSERT_EQ(machine.processes().size(), 1u);
  EXPECT_EQ(machine.RunToCompletion(pid.value()).exit_code, 1);

  // And forward again to the child, then back once more.
  ASSERT_TRUE(machine.RestoreTo(child));
  auto pid3 = machine.CreateProcess("main");
  ASSERT_TRUE(pid3.ok());
  EXPECT_EQ(machine.RunToCompletion(pid3.value()).exit_code, 2);
  ASSERT_TRUE(machine.RestoreTo(root));
  EXPECT_EQ(machine.RunToCompletion(pid.value()).exit_code, 1);
}

TEST(MachineSnapshotTree, InterleavedSiblingRestores) {
  Machine machine;
  machine.Load(LoopApp());
  auto pid = machine.CreateProcess("main");
  ASSERT_TRUE(pid.ok());
  ASSERT_EQ(machine.Run(1), RunOutcome::BudgetSpent);
  const uint64_t at_root = machine.total_instructions();
  SnapshotId root = machine.PushSnapshot();

  // Sibling A: one more quantum past the root.
  ASSERT_EQ(machine.Run(at_root + 1), RunOutcome::BudgetSpent);
  const uint64_t at_a = machine.total_instructions();
  ASSERT_GT(at_a, at_root);
  SnapshotId a = machine.PushSnapshot();

  // Sibling B: a deeper point, forked from the same root.
  ASSERT_TRUE(machine.RestoreTo(root));
  ASSERT_EQ(machine.Run(at_a + 1), RunOutcome::BudgetSpent);
  const uint64_t at_b = machine.total_instructions();
  ASSERT_GT(at_b, at_a);
  SnapshotId b = machine.PushSnapshot();

  // Interleave restores across the two siblings; each must come back at
  // its own instant, and resuming from either must finish identically.
  ASSERT_TRUE(machine.RestoreTo(a));
  EXPECT_EQ(machine.total_instructions(), at_a);
  ASSERT_TRUE(machine.RestoreTo(b));
  EXPECT_EQ(machine.total_instructions(), at_b);
  ASSERT_TRUE(machine.RestoreTo(a));
  EXPECT_EQ(machine.total_instructions(), at_a);
  auto info = machine.RunToCompletion(pid.value());
  EXPECT_EQ(info.state, ProcState::Exited);
  EXPECT_EQ(info.exit_code, 10000);
  const uint64_t total = machine.total_instructions();
  ASSERT_TRUE(machine.RestoreTo(b));
  info = machine.RunToCompletion(pid.value());
  EXPECT_EQ(info.state, ProcState::Exited);
  EXPECT_EQ(info.exit_code, 10000);
  EXPECT_EQ(machine.total_instructions(), total);
}

TEST(MachineSnapshotTree, RestoreTelemetryAccumulates) {
  Machine machine;
  machine.Load(CounterApp());
  auto pid = machine.CreateProcess("main");
  ASSERT_TRUE(pid.ok());
  SnapshotId root = machine.PushSnapshot();
  EXPECT_EQ(machine.restore_stats().restores, 0u);
  machine.RunToCompletion(pid.value());
  ASSERT_TRUE(machine.RestoreTo(root));
  const SnapshotRestoreStats& stats = machine.restore_stats();
  EXPECT_EQ(stats.restores, 1u);
  EXPECT_GT(stats.pages_restored, 0u);  // the run dirtied at least 1 page
  EXPECT_GT(stats.nodes_walked, 0u);
}

TEST(MachineSnapshotTree, FlatSnapshotAliasesTreeRoot) {
  // The legacy flat API is the one-node special case of the tree: Snapshot
  // drops any existing tree and pushes a fresh root.
  Machine machine;
  machine.Load(CounterApp());
  auto pid = machine.CreateProcess("main");
  ASSERT_TRUE(pid.ok());
  machine.PushSnapshot();
  machine.RunToCompletion(pid.value());
  machine.PushSnapshot();
  ASSERT_EQ(machine.snapshot_node_count(), 2u);
  machine.Snapshot();  // flat API: back to a single-node tree
  EXPECT_EQ(machine.snapshot_node_count(), 1u);
  ASSERT_TRUE(machine.RestoreSnapshot());
  auto pid2 = machine.CreateProcess("main");
  ASSERT_TRUE(pid2.ok());
  // Counter was 1 at the flat snapshot: the rerun increments it to 2.
  EXPECT_EQ(machine.RunToCompletion(pid2.value()).exit_code, 2);
}

TEST(Process, UnknownSyscallNumberReturnsNosys) {
  // Exercises the flat syscall-target table's bounds path (numbers past
  // the table and unimplemented holes both return -E_NOSYS).
  auto app = OneFn("main", [](CodeBuilder& b) {
    b.syscall(9999);
    // R0 now holds -E_NOSYS; return it.
  });
  EXPECT_EQ(RunAndGetExit(std::move(app), "main"), -E_NOSYS);
}

}  // namespace
}  // namespace lfi::vm
