// Wire protocol unit tests: exact round trips for every payload type
// (doubles must survive bit-for-bit — the fabric's byte-identity story
// depends on it), framing over a real socketpair, and rejection of
// malformed or truncated input.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cmath>

#include "serve/wire.hpp"

namespace lfi::serve {
namespace {

core::Plan SamplePlan() {
  core::Plan plan;
  plan.seed = 0xDEADBEEFCAFE1234ull;
  core::FunctionTrigger t1;
  t1.function = "read";
  t1.mode = core::FunctionTrigger::Mode::Probability;
  // Deliberately not representable in %g's 6 significant digits: an XML
  // round trip would corrupt it, the wire must not.
  t1.probability = 0.12345678901234567;
  t1.retval = -1;
  t1.errno_value = 9;
  t1.max_injections = 3;
  core::FrameCondition frame;
  frame.address = 0xb824490;
  t1.stacktrace.push_back(frame);
  core::FrameCondition frame2;
  frame2.symbol = "refresh_files";
  t1.stacktrace.push_back(frame2);
  plan.triggers.push_back(t1);
  core::FunctionTrigger t2;
  t2.function = "write";
  t2.mode = core::FunctionTrigger::Mode::CallCount;
  t2.inject_call = 20;
  t2.call_original = true;
  core::ArgModification mod;
  mod.argument = 3;
  mod.op = core::ArgModification::Op::Sub;
  mod.value = -10;
  t2.modifications.push_back(mod);
  plan.triggers.push_back(t2);
  core::SeuFault seu;
  seu.target = core::SeuFault::Target::Data;
  seu.module = "app.so";
  seu.offset = 0x48;
  seu.bit = 63;
  seu.at_instruction = 0xFFFF'FFFF'0ull;
  seu.pid = 2;
  seu.window_module = "libc.so";
  seu.window_begin = 0x100;
  seu.window_end = 0x180;
  plan.seus.push_back(seu);
  core::SeuFault seu2;
  seu2.target = core::SeuFault::Target::Reg;
  seu2.reg = 9;
  seu2.bit = 0;
  seu2.at_instruction = 1;
  plan.seus.push_back(seu2);
  return plan;
}

void ExpectSamePlan(const core::Plan& a, const core::Plan& b) {
  ASSERT_EQ(a.triggers.size(), b.triggers.size());
  EXPECT_EQ(a.seed, b.seed);
  for (size_t i = 0; i < a.triggers.size(); ++i) {
    const core::FunctionTrigger& ta = a.triggers[i];
    const core::FunctionTrigger& tb = b.triggers[i];
    EXPECT_EQ(ta.function, tb.function);
    EXPECT_EQ(ta.mode, tb.mode);
    EXPECT_EQ(ta.inject_call, tb.inject_call);
    // Bit-exact, not approximately equal — that is the point.
    EXPECT_EQ(std::bit_cast<uint64_t>(ta.probability),
              std::bit_cast<uint64_t>(tb.probability));
    EXPECT_EQ(ta.retval, tb.retval);
    EXPECT_EQ(ta.errno_value, tb.errno_value);
    EXPECT_EQ(ta.call_original, tb.call_original);
    EXPECT_EQ(ta.max_injections, tb.max_injections);
    ASSERT_EQ(ta.stacktrace.size(), tb.stacktrace.size());
    for (size_t f = 0; f < ta.stacktrace.size(); ++f) {
      EXPECT_EQ(ta.stacktrace[f].address, tb.stacktrace[f].address);
      EXPECT_EQ(ta.stacktrace[f].symbol, tb.stacktrace[f].symbol);
    }
    ASSERT_EQ(ta.modifications.size(), tb.modifications.size());
    for (size_t m = 0; m < ta.modifications.size(); ++m) {
      EXPECT_EQ(ta.modifications[m].argument, tb.modifications[m].argument);
      EXPECT_EQ(ta.modifications[m].op, tb.modifications[m].op);
      EXPECT_EQ(ta.modifications[m].value, tb.modifications[m].value);
    }
  }
  ASSERT_EQ(a.seus.size(), b.seus.size());
  for (size_t i = 0; i < a.seus.size(); ++i) {
    const core::SeuFault& sa = a.seus[i];
    const core::SeuFault& sb = b.seus[i];
    EXPECT_EQ(sa.target, sb.target);
    EXPECT_EQ(sa.reg, sb.reg);
    EXPECT_EQ(sa.offset, sb.offset);
    EXPECT_EQ(sa.module, sb.module);
    EXPECT_EQ(sa.bit, sb.bit);
    EXPECT_EQ(sa.at_instruction, sb.at_instruction);
    EXPECT_EQ(sa.pid, sb.pid);
    EXPECT_EQ(sa.window_module, sb.window_module);
    EXPECT_EQ(sa.window_begin, sb.window_begin);
    EXPECT_EQ(sa.window_end, sb.window_end);
  }
}

TEST(Wire, PlanRoundTripIsExact) {
  std::vector<uint8_t> buf;
  EncodePlan(buf, SamplePlan());
  Reader r(buf);
  auto decoded = DecodePlan(r);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_TRUE(r.AtEnd());
  ExpectSamePlan(SamplePlan(), decoded.value());
}

TEST(Wire, BothTransportsPreserveProbabilityBits) {
  core::Plan plan = SamplePlan();
  // The XML path prints %.17g now, so it round-trips this probability
  // exactly too — the wire stays binary anyway (byte identity by
  // construction, not by printf/strtod agreeing), and both transports
  // must deliver the same bits.
  auto xml_round = core::Plan::FromXml(plan.ToXml());
  ASSERT_TRUE(xml_round.ok());
  EXPECT_EQ(std::bit_cast<uint64_t>(plan.triggers[0].probability),
            std::bit_cast<uint64_t>(xml_round.value().triggers[0].probability));
  std::vector<uint8_t> buf;
  EncodePlan(buf, plan);
  Reader r(buf);
  auto decoded = DecodePlan(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::bit_cast<uint64_t>(plan.triggers[0].probability),
            std::bit_cast<uint64_t>(decoded.value().triggers[0].probability));
}

TEST(Wire, TruncatedPlanIsRejectedAtEveryLength) {
  std::vector<uint8_t> buf;
  EncodePlan(buf, SamplePlan());
  for (size_t len = 0; len < buf.size(); ++len) {
    std::vector<uint8_t> cut(buf.begin(), buf.begin() + len);
    Reader r(cut);
    auto decoded = DecodePlan(r);
    // Either an explicit decode error, or (when the cut lands on a
    // collection-count boundary) a shorter-but-complete prefix — in which
    // case the reader must not have consumed past the cut.
    if (decoded.ok()) {
      EXPECT_LE(r.pos, len);
    }
  }
}

TEST(Wire, ScenarioRoundTrip) {
  campaign::Scenario s;
  s.name = "random-p0.3-17";
  s.plan = SamplePlan();
  s.entry = "handle_request";
  s.heap_cap_bytes = 1 << 22;
  s.warmup_instructions = 12345;
  s.weight = 7;
  std::vector<uint8_t> buf;
  EncodeScenario(buf, s);
  Reader r(buf);
  auto decoded = DecodeScenario(r);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(decoded.value().name, s.name);
  EXPECT_EQ(decoded.value().entry, s.entry);
  EXPECT_EQ(decoded.value().heap_cap_bytes, s.heap_cap_bytes);
  EXPECT_EQ(decoded.value().warmup_instructions, s.warmup_instructions);
  EXPECT_EQ(decoded.value().weight, s.weight);
  ExpectSamePlan(s.plan, decoded.value().plan);
}

TEST(Wire, OptionsRoundTrip) {
  campaign::CampaignOptions o;
  o.jobs = 4;
  o.shard = campaign::ShardPolicy::SizeBalanced;
  o.entry = "start";
  o.max_instructions = 123456789;
  o.default_heap_cap = 1 << 21;
  o.track_coverage = true;
  o.collect_scenario_coverage = true;
  o.collect_replays = true;
  o.snapshot_tree = true;
  o.warmup_instructions = 4096;
  o.collect_state_digest = true;
  o.exec_mode = vm::ExecMode::Predecoded;
  o.controller.log_backtraces = false;
  o.controller.log_capacity = 42;
  o.controller.feasible_only = true;
  std::vector<uint8_t> buf;
  EncodeOptions(buf, o);
  Reader r(buf);
  auto decoded = DecodeOptions(r);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_TRUE(r.AtEnd());
  const campaign::CampaignOptions& d = decoded.value();
  EXPECT_EQ(d.jobs, o.jobs);
  EXPECT_EQ(d.shard, o.shard);
  EXPECT_EQ(d.entry, o.entry);
  EXPECT_EQ(d.max_instructions, o.max_instructions);
  EXPECT_EQ(d.default_heap_cap, o.default_heap_cap);
  EXPECT_EQ(d.track_coverage, o.track_coverage);
  EXPECT_EQ(d.collect_scenario_coverage, o.collect_scenario_coverage);
  EXPECT_EQ(d.collect_replays, o.collect_replays);
  EXPECT_EQ(d.snapshot, o.snapshot);
  EXPECT_EQ(d.snapshot_tree, o.snapshot_tree);
  EXPECT_EQ(d.warmup_instructions, o.warmup_instructions);
  EXPECT_EQ(d.collect_state_digest, o.collect_state_digest);
  EXPECT_EQ(d.exec_mode, o.exec_mode);
  EXPECT_EQ(d.controller.log_enabled, o.controller.log_enabled);
  EXPECT_EQ(d.controller.log_backtraces, o.controller.log_backtraces);
  EXPECT_EQ(d.controller.log_capacity, o.controller.log_capacity);
  EXPECT_EQ(d.controller.feasible_only, o.controller.feasible_only);
}

TEST(Wire, FeasibleOnlyDefaultsOffOnTheWire) {
  // A coordinator not opting in must not accidentally set the bit: the
  // fabric's gate state has to match the in-process controller's exactly
  // or distributed rounds diverge from local ones.
  campaign::CampaignOptions o;
  std::vector<uint8_t> buf;
  EncodeOptions(buf, o);
  Reader r(buf);
  auto decoded = DecodeOptions(r);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_FALSE(decoded.value().controller.feasible_only);
}

TEST(Wire, BitmapRoundTrip) {
  vm::CoverageBitmap bitmap(1000);
  for (uint32_t off : {0u, 1u, 63u, 64u, 517u, 999u}) bitmap.Set(off);
  std::vector<uint8_t> buf;
  EncodeBitmap(buf, bitmap);
  Reader r(buf);
  auto decoded = DecodeBitmap(r);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(decoded.value(), bitmap);
  EXPECT_EQ(decoded.value().size_bits(), bitmap.size_bits());
}

TEST(Wire, BitmapRejectsOutOfRangeOffset) {
  std::vector<uint8_t> buf;
  PutU64(buf, 100);  // 100 bits...
  PutU32(buf, 1);
  PutU32(buf, 100);  // ...but an offset at 100
  Reader r(buf);
  auto decoded = DecodeBitmap(r);
  EXPECT_FALSE(decoded.ok());
}

TEST(Wire, ResultRoundTrip) {
  campaign::ScenarioResult res;
  res.index = 17;
  res.name = "s17";
  res.status = campaign::ScenarioStatus::Crashed;
  res.exit_code = -1;
  res.signal = vm::Signal::Segv;
  res.fault_message = "load fault at 0xfffffff8";
  res.injections = 3;
  res.instructions = 123456;
  res.seconds = 0.001953125;
  res.covered_offsets = 321;
  res.covered_by_module["readerapp.so"] = 100;
  res.covered_by_module["libc.so"] = 221;
  vm::CoverageBitmap bitmap(256);
  bitmap.Set(3);
  bitmap.Set(250);
  res.coverage["readerapp.so"] = bitmap;
  res.fault_frames = {"read+0x12", "main+0x40"};
  res.crash_site_hash = 0x1111222233334444ull;
  res.crash_hash = 0x5555666677778888ull;
  res.replay = SamplePlan();
  res.first_injection_instructions = 777;
  res.snapshot_fallback = true;
  res.restore_pages = 12;
  res.restore_nodes_walked = 2;
  res.state_digest = 0x9999AAAABBBBCCCCull;
  res.seu_landed = 1;

  std::vector<uint8_t> buf;
  EncodeResult(buf, res);
  Reader r(buf);
  auto decoded = DecodeResult(r);
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_TRUE(r.AtEnd());
  const campaign::ScenarioResult& d = decoded.value();
  EXPECT_EQ(d.index, res.index);
  EXPECT_EQ(d.name, res.name);
  EXPECT_EQ(d.status, res.status);
  EXPECT_EQ(d.exit_code, res.exit_code);
  EXPECT_EQ(d.signal, res.signal);
  EXPECT_EQ(d.fault_message, res.fault_message);
  EXPECT_EQ(d.injections, res.injections);
  EXPECT_EQ(d.instructions, res.instructions);
  EXPECT_EQ(std::bit_cast<uint64_t>(d.seconds),
            std::bit_cast<uint64_t>(res.seconds));
  EXPECT_EQ(d.covered_offsets, res.covered_offsets);
  EXPECT_EQ(d.covered_by_module, res.covered_by_module);
  EXPECT_EQ(d.coverage, res.coverage);
  EXPECT_EQ(d.fault_frames, res.fault_frames);
  EXPECT_EQ(d.crash_site_hash, res.crash_site_hash);
  EXPECT_EQ(d.crash_hash, res.crash_hash);
  ExpectSamePlan(res.replay, d.replay);
  EXPECT_EQ(d.first_injection_instructions, res.first_injection_instructions);
  EXPECT_EQ(d.snapshot_fallback, res.snapshot_fallback);
  EXPECT_EQ(d.restore_pages, res.restore_pages);
  EXPECT_EQ(d.restore_nodes_walked, res.restore_nodes_walked);
  EXPECT_EQ(d.state_digest, res.state_digest);
  EXPECT_EQ(d.seu_landed, res.seu_landed);
}

TEST(Wire, PlanRejectsBadSeuFields) {
  // A malformed peer must not smuggle an out-of-range target or bit index
  // past the decoder: corrupt the encoded bytes and expect errors.
  core::Plan plan;
  core::SeuFault seu;
  seu.target = core::SeuFault::Target::Reg;
  seu.reg = 3;
  seu.bit = 17;
  seu.at_instruction = 5;
  plan.seus.push_back(seu);
  std::vector<uint8_t> good;
  EncodePlan(good, plan);

  // Layout after the (empty) trigger section: seu count u32, then
  // target u8 at a fixed offset.
  size_t target_off = 8 + 4 + 4;  // seed + trigger count + seu count
  std::vector<uint8_t> bad = good;
  bad[target_off] = 7;  // no such target
  Reader r1(bad);
  EXPECT_FALSE(DecodePlan(r1).ok());

  bad = good;
  size_t bit_off = target_off + 1 + 8 + 8 + 4;  // + target, reg, offset, str
  bad[bit_off] = 64;  // bit out of range
  Reader r2(bad);
  EXPECT_FALSE(DecodePlan(r2).ok());
}

TEST(Wire, ConfigureRoundTrip) {
  ConfigureMsg msg;
  msg.target.modules.push_back({1, 2, 3, 4});
  msg.target.modules.push_back({});
  msg.target.files.emplace_back("/cfg", std::vector<uint8_t>(64, 'x'));
  msg.target.ports.push_back(8080);
  core::FaultProfile profile;
  profile.library = "libc.so";
  msg.profiles.push_back(profile);
  msg.options.entry = "main";
  msg.options.track_coverage = true;
  auto decoded = DecodeConfigure(EncodeConfigure(msg));
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_EQ(decoded.value().target.modules, msg.target.modules);
  EXPECT_EQ(decoded.value().target.files, msg.target.files);
  EXPECT_EQ(decoded.value().target.ports, msg.target.ports);
  ASSERT_EQ(decoded.value().profiles.size(), 1u);
  EXPECT_EQ(decoded.value().profiles[0].library, "libc.so");
  EXPECT_EQ(decoded.value().options.entry, "main");
  EXPECT_TRUE(decoded.value().options.track_coverage);
}

TEST(Wire, BatchAndResultMessagesRoundTrip) {
  BatchMsg batch;
  campaign::Scenario s;
  s.name = "s9";
  s.plan = SamplePlan();
  batch.indices.push_back(9);
  batch.scenarios.push_back(s);
  auto decoded = DecodeBatch(EncodeBatch(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  ASSERT_EQ(decoded.value().indices.size(), 1u);
  EXPECT_EQ(decoded.value().indices[0], 9u);
  EXPECT_EQ(decoded.value().scenarios[0].name, "s9");

  BatchResultMsg result;
  campaign::ScenarioResult res;
  res.index = 9;
  res.name = "s9";
  result.results.push_back(res);
  vm::CoverageBitmap bitmap(64);
  bitmap.Set(5);
  result.coverage.emplace_back("libc.so", bitmap);
  auto rdecoded = DecodeBatchResult(EncodeBatchResult(result));
  ASSERT_TRUE(rdecoded.ok()) << rdecoded.error();
  ASSERT_EQ(rdecoded.value().results.size(), 1u);
  EXPECT_EQ(rdecoded.value().results[0].index, 9u);
  ASSERT_EQ(rdecoded.value().coverage.size(), 1u);
  EXPECT_EQ(rdecoded.value().coverage[0].second, bitmap);
}

TEST(Wire, TrailingGarbageIsAnError) {
  BatchMsg batch;
  std::vector<uint8_t> payload = EncodeBatch(batch);
  payload.push_back(0xFF);
  EXPECT_FALSE(DecodeBatch(payload).ok());
}

TEST(Wire, FramesTravelOverASocket) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<uint8_t> payload = {10, 20, 30};
  ASSERT_TRUE(WriteFrame(fds[0], MsgType::RunBatch, payload).ok());
  auto frame = ReadFrame(fds[1], 1000);
  ASSERT_TRUE(frame.ok()) << frame.error();
  EXPECT_EQ(frame.value().type, MsgType::RunBatch);
  EXPECT_EQ(frame.value().payload, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Wire, ReadFrameRejectsBadMagicAndBadType) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<uint8_t> junk;
  PutU32(junk, 0x12345678);  // wrong magic
  PutU8(junk, 1);
  PutU32(junk, 0);
  ASSERT_EQ(::write(fds[0], junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));
  EXPECT_FALSE(ReadFrame(fds[1], 1000).ok());

  junk.clear();
  PutU32(junk, kWireMagic);
  PutU8(junk, 99);  // unknown type
  PutU32(junk, 0);
  ASSERT_EQ(::write(fds[0], junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));
  EXPECT_FALSE(ReadFrame(fds[1], 1000).ok());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Wire, ReadFrameRejectsOversizePayloadBeforeAllocating) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<uint8_t> junk;
  PutU32(junk, kWireMagic);
  PutU8(junk, static_cast<uint8_t>(MsgType::RunBatch));
  PutU32(junk, kMaxPayload + 1);
  ASSERT_EQ(::write(fds[0], junk.data(), junk.size()),
            static_cast<ssize_t>(junk.size()));
  auto frame = ReadFrame(fds[1], 1000);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.error().find("too large"), std::string::npos);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Wire, ReadFrameTimesOutOnASilentPeer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  auto frame = ReadFrame(fds[1], 50);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.error().find("timeout"), std::string::npos);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Wire, MakeSetupRejectsGarbageModules) {
  TargetSpec spec;
  spec.modules.push_back({0xDE, 0xAD});
  EXPECT_FALSE(MakeSetup(spec).ok());
}

}  // namespace
}  // namespace lfi::serve
