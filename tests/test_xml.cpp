#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "xml/xml.hpp"

namespace lfi::xml {
namespace {

TEST(XmlParse, SimpleElement) {
  auto doc = Parse("<root />");
  ASSERT_TRUE(doc.ok()) << doc.error();
  EXPECT_EQ(doc.value()->name(), "root");
}

TEST(XmlParse, Attributes) {
  auto doc = Parse(R"(<f name="close" retval="-1" />)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->attr_or("name", ""), "close");
  EXPECT_EQ(doc.value()->attr_int("retval"), -1);
}

TEST(XmlParse, SingleQuotedAttributes) {
  auto doc = Parse("<f a='1' />");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->attr_int("a"), 1);
}

TEST(XmlParse, NestedChildren) {
  auto doc = Parse("<a><b><c /></b><b /></a>");
  ASSERT_TRUE(doc.ok());
  auto bs = doc.value()->children_named("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_NE(bs[0]->child("c"), nullptr);
  EXPECT_EQ(bs[1]->child("c"), nullptr);
}

TEST(XmlParse, TextContent) {
  auto doc = Parse("<frame>refresh_files</frame>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->text(), "refresh_files");
}

TEST(XmlParse, EntityUnescaping) {
  auto doc = Parse("<t a=\"&lt;&amp;&gt;\">&quot;x&apos;</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value()->attr_or("a", ""), "<&>");
  EXPECT_EQ(doc.value()->text(), "\"x'");
}

TEST(XmlParse, SkipsCommentsAndDeclaration) {
  auto doc = Parse("<?xml version=\"1.0\"?><!-- hi --><r><!-- x --><c /></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc.value()->child("c"), nullptr);
}

TEST(XmlParse, PaperProfileSnippet) {
  // The §3.3 sample profile shape parses.
  auto doc = Parse(R"(
    <profile>
      <function name="close">
        <error-codes retval="-1">
          <side-effect type="TLS" module="libc.so.6" offset="12FFF4">-9</side-effect>
          <side-effect type="TLS" module="libc.so.6" offset="12FFF4">-5</side-effect>
        </error-codes>
      </function>
    </profile>)");
  ASSERT_TRUE(doc.ok()) << doc.error();
  const Node* fn = doc.value()->child("function");
  ASSERT_NE(fn, nullptr);
  const Node* ec = fn->child("error-codes");
  ASSERT_NE(ec, nullptr);
  EXPECT_EQ(ec->children_named("side-effect").size(), 2u);
}

TEST(XmlParse, RejectsMismatchedTags) {
  EXPECT_FALSE(Parse("<a></b>").ok());
}

TEST(XmlParse, RejectsTrailingContent) {
  EXPECT_FALSE(Parse("<a /><b />").ok());
}

TEST(XmlParse, RejectsUnterminated) {
  EXPECT_FALSE(Parse("<a><b></b>").ok());
  EXPECT_FALSE(Parse("<a attr=\"x").ok());
}

TEST(XmlParse, RejectsEmpty) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("   ").ok());
}

TEST(XmlParse, RejectsUnquotedAttribute) {
  EXPECT_FALSE(Parse("<a x=1 />").ok());
}

TEST(XmlNode, AttrOverwrite) {
  Node n("x");
  n.set_attr("k", "1");
  n.set_attr("k", "2");
  EXPECT_EQ(n.attr_or("k", ""), "2");
  EXPECT_EQ(n.attrs().size(), 1u);
}

TEST(XmlNode, AttrIntMalformed) {
  Node n("x");
  n.set_attr("k", "abc");
  EXPECT_FALSE(n.attr_int("k").has_value());
}

TEST(XmlSerialize, EscapesSpecials) {
  Node n("t");
  n.set_attr("a", "<&>\"");
  n.set_text("a<b");
  std::string s = n.serialize();
  EXPECT_NE(s.find("&lt;&amp;&gt;&quot;"), std::string::npos);
  EXPECT_NE(s.find("a&lt;b"), std::string::npos);
}

TEST(XmlSerialize, RoundTripPreservesStructure) {
  Node root("plan");
  root.set_attr("seed", "42");
  Node* f = root.add_child("function");
  f->set_attr("name", "read");
  f->add_child("modify")->set_attr("op", "sub");
  Node* st = f->add_child("stacktrace");
  st->add_child("frame")->set_text("refresh_files");

  auto parsed = Parse(root.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const Node& r = *parsed.value();
  EXPECT_EQ(r.attr_or("seed", ""), "42");
  const Node* fn = r.child("function");
  ASSERT_NE(fn, nullptr);
  EXPECT_NE(fn->child("modify"), nullptr);
  ASSERT_NE(fn->child("stacktrace"), nullptr);
  EXPECT_EQ(fn->child("stacktrace")->children()[0]->text(), "refresh_files");
}

// Property test: random trees survive serialize -> parse -> serialize.
class XmlRoundTrip : public ::testing::TestWithParam<uint64_t> {};

namespace {
void BuildRandomTree(lfi::Rng& rng, Node* node, int depth) {
  int attrs = static_cast<int>(rng.below(3));
  for (int i = 0; i < attrs; ++i) {
    node->set_attr("a" + std::to_string(i),
                   "v<&>'\"" + std::to_string(rng.below(100)));
  }
  if (depth > 0) {
    int kids = static_cast<int>(rng.below(4));
    for (int i = 0; i < kids; ++i) {
      BuildRandomTree(rng, node->add_child("n" + std::to_string(i)),
                      depth - 1);
    }
    if (kids == 0) node->set_text("text&<>" + std::to_string(rng.below(50)));
  }
}
}  // namespace

TEST_P(XmlRoundTrip, SerializeParseFixpoint) {
  lfi::Rng rng(GetParam());
  Node root("root");
  BuildRandomTree(rng, &root, 3);
  std::string first = root.serialize();
  auto parsed = Parse(first);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value()->serialize(), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTrip,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace lfi::xml
