// The `lfi` command-line tool — the paper's two-command workflow (§6.1:
// "it requires issuing two commands, one for profiling and one for running
// the tests"), plus utilities for working with synthetic binaries.
//
//   lfi demo-assets <dir>                 write libc/kernel/demo-app binaries
//   lfi disasm <lib.sso>                  objdump-style listing
//   lfi profile <target.sso> [deps...] -o profile.xml
//   lfi generate (--random p | --exhaustive) [--seed n] <profile.xml...>
//                -o plan.xml
//   lfi test --app <app.sso> --entry <symbol> --plan <plan.xml>
//            --profile <profile.xml> [--lib <dep.sso>]... [--file path]...
//
// Exit codes from `lfi test`: 0 = target exited cleanly, 3 = target
// crashed under injection (a finding!), 1 = usage/setup error.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "apps/seu_guest.hpp"
#include "apps/workloads.hpp"
#include "campaign/explorer.hpp"
#include "campaign/runner.hpp"
#include "campaign/seu.hpp"
#include "core/controller.hpp"
#include "core/profiler.hpp"
#include "core/scenario_gen.hpp"
#include "isa/codebuilder.hpp"
#include "isa/harden.hpp"
#include "kernel/kernel_image.hpp"
#include "libc/libc_builder.hpp"
#include "serve/coordinator.hpp"
#include "serve/worker.hpp"
#include "util/strings.hpp"
#include "vm/machine.hpp"

using namespace lfi;

namespace {

bool ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

bool ReadTextFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

bool WriteFile(const std::string& path, const void* data, size_t size) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  return out.good();
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "lfi: %s\n", message.c_str());
  return 1;
}

Result<sso::SharedObject> LoadSso(const std::string& path) {
  std::vector<uint8_t> bytes;
  if (!ReadFile(path, &bytes)) return Err("cannot read " + path);
  return sso::SharedObject::Parse(bytes);
}

/// Load fault-profile XML files into `out`.
Status LoadProfiles(const std::vector<std::string>& paths,
                    std::vector<core::FaultProfile>* out) {
  for (const std::string& path : paths) {
    std::string text;
    if (!ReadTextFile(path, &text)) return Err("cannot read " + path);
    auto profile = core::FaultProfile::FromXml(text);
    if (!profile.ok()) return Err(path + ": " + profile.error());
    out->push_back(std::move(profile).take());
  }
  return Status::Ok();
}

// Every numeric flag parses through the strict util::Parse{Uint,Double}-
// backed helpers (util/strings.hpp). The old strtoull/strtod paths
// accepted signed wraps ("--jobs -5" became 18446744073709551611), leading
// whitespace, partial parses ("--seed 12x" became 12), and — for strtod —
// were locale-dependent (a comma-decimal locale rejected "--random 0.5").
using lfi::ParseCountFlag;
using lfi::ParseProbabilityFlag;

/// A demo application with an unchecked read() for `lfi test` to break.
sso::SharedObject BuildDemoApp() {
  isa::CodeBuilder b;
  uint32_t path = b.emit_data({'/', 'e', 't', 'c', '/', 'c', 'f', 'g', 0});
  uint32_t buf = b.reserve_data(128);
  b.begin_function("main");
  b.sub_ri(isa::Reg::SP, 16);
  b.mov_ri(isa::Reg::R2, libc::O_RDONLY);
  b.lea_data(isa::Reg::R1, static_cast<int32_t>(path));
  b.push(isa::Reg::R2);
  b.push(isa::Reg::R1);
  b.call_sym("open");
  b.add_ri(isa::Reg::SP, 16);
  b.store(isa::Reg::BP, -8, isa::Reg::R0);
  b.load(isa::Reg::R1, isa::Reg::BP, -8);
  b.lea_data(isa::Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(isa::Reg::R3, 64);
  b.push(isa::Reg::R3);
  b.push(isa::Reg::R2);
  b.push(isa::Reg::R1);
  b.call_sym("read");
  b.add_ri(isa::Reg::SP, 24);
  // BUG: result not checked; negative counts abort (models a memcpy).
  auto ok = b.new_label();
  b.cmp_ri(isa::Reg::R0, 0);
  b.jge(ok);
  b.call_sym("abort");
  b.bind(ok);
  b.load(isa::Reg::R1, isa::Reg::BP, -8);
  b.push(isa::Reg::R1);
  b.call_sym("close");
  b.add_ri(isa::Reg::SP, 8);
  b.mov_ri(isa::Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("demoapp.so", b.Finish(), {libc::kLibcName});
}

int CmdDemoAssets(const std::vector<std::string>& args) {
  if (args.empty()) return Fail("demo-assets: missing output directory");
  const std::string dir = args[0];
  struct Asset {
    std::string file;
    sso::SharedObject object;
  };
  std::vector<Asset> assets;
  assets.push_back({dir + "/libc.sso", libc::BuildLibc()});
  assets.push_back({dir + "/kernel.sso", kernel::BuildKernelImage()});
  assets.push_back({dir + "/demoapp.sso", BuildDemoApp()});
  for (const Asset& a : assets) {
    std::vector<uint8_t> bytes = a.object.Serialize();
    if (!WriteFile(a.file, bytes.data(), bytes.size())) {
      return Fail("cannot write " + a.file);
    }
    std::printf("wrote %s (%zu bytes, %zu exports)\n", a.file.c_str(),
                bytes.size(), a.object.exports.size());
  }
  return 0;
}

int CmdDisasm(const std::vector<std::string>& args) {
  if (args.empty()) return Fail("disasm: missing .sso file");
  auto so = LoadSso(args[0]);
  if (!so.ok()) return Fail(so.error());
  std::printf("%s", so.value().Disassembly().c_str());
  return 0;
}

int CmdProfile(const std::vector<std::string>& args) {
  std::vector<std::string> inputs;
  std::string out_path;
  core::ProfilerOptions popts;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--max-states" && i + 1 < args.size()) {
      // Per-query G' exploration budget: when a function's state walk
      // exceeds it, its returns degrade to "unknown" instead of hanging
      // the profiler on adversarial control flow.
      popts.analysis.max_states = std::strtoull(args[++i].c_str(), nullptr, 10);
      if (popts.analysis.max_states == 0) {
        return Fail("profile: --max-states must be > 0");
      }
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (inputs.empty()) return Fail("profile: missing target .sso");

  std::vector<sso::SharedObject> objects;
  for (const std::string& path : inputs) {
    auto so = LoadSso(path);
    if (!so.ok()) return Fail(so.error());
    objects.push_back(std::move(so).take());
  }
  sso::SharedObject kernel_img = kernel::BuildKernelImage();
  analysis::Workspace ws;
  ws.SetKernel(&kernel_img);
  for (const auto& so : objects) ws.AddModule(&so);

  core::Profiler profiler(ws, popts);
  auto profile = profiler.ProfileLibrary(objects[0]);
  if (!profile.ok()) return Fail(profile.error());
  std::string xml = profile.value().ToXml();
  if (out_path.empty()) {
    std::printf("%s", xml.c_str());
  } else if (!WriteFile(out_path, xml.data(), xml.size())) {
    return Fail("cannot write " + out_path);
  }
  std::fprintf(stderr,
               "profiled %zu functions in %.2f ms (%llu G' states)\n",
               profiler.stats().functions_profiled,
               profiler.stats().total_time.count() / 1e6,
               (unsigned long long)profiler.stats().states_explored);
  return 0;
}

int CmdGenerate(const std::vector<std::string>& args) {
  double probability = -1;
  bool exhaustive = false;
  uint64_t seed = 1;
  std::string out_path;
  std::vector<std::string> inputs;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--random" && i + 1 < args.size()) {
      auto p = ParseProbabilityFlag("--random", args[++i]);
      if (!p.ok()) return Fail("generate: " + p.error());
      probability = p.value();
    } else if (args[i] == "--exhaustive") {
      exhaustive = true;
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      // The seed is the reproducibility anchor of a generated plan; a
      // silently-coerced "--seed abc" (0) or "--seed 12x" (12) would
      // produce a plan nobody can regenerate from their notes.
      auto v = ParseCountFlag("--seed", args[++i]);
      if (!v.ok()) return Fail("generate: " + v.error());
      seed = v.value();
    } else if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (inputs.empty()) return Fail("generate: missing profile.xml");
  if (!exhaustive && probability < 0) {
    return Fail("generate: need --random <p> or --exhaustive");
  }
  std::vector<core::FaultProfile> profiles;
  if (auto st = LoadProfiles(inputs, &profiles); !st.ok()) {
    return Fail(st.error());
  }
  core::Plan plan = exhaustive
                        ? core::GenerateExhaustive(profiles)
                        : core::GenerateRandom(profiles, probability, seed);
  std::string xml = plan.ToXml();
  if (out_path.empty()) {
    std::printf("%s", xml.c_str());
  } else if (!WriteFile(out_path, xml.data(), xml.size())) {
    return Fail("cannot write " + out_path);
  }
  std::fprintf(stderr, "generated %zu triggers\n", plan.triggers.size());
  return 0;
}

int CmdTest(const std::vector<std::string>& args) {
  std::string app_path, entry = "main", plan_path, replay_out;
  std::vector<std::string> lib_paths, profile_paths, vfs_files;
  for (size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (args[i] == "--app") app_path = next();
    else if (args[i] == "--entry") entry = next();
    else if (args[i] == "--plan") plan_path = next();
    else if (args[i] == "--profile") profile_paths.push_back(next());
    else if (args[i] == "--lib") lib_paths.push_back(next());
    else if (args[i] == "--file") vfs_files.push_back(next());
    else if (args[i] == "--replay-out") replay_out = next();
    else return Fail("test: unknown argument " + args[i]);
  }
  if (app_path.empty() || plan_path.empty()) {
    return Fail("test: need --app and --plan");
  }

  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  for (const std::string& path : lib_paths) {
    auto so = LoadSso(path);
    if (!so.ok()) return Fail(so.error());
    machine.Load(std::move(so).take());
  }
  auto app = LoadSso(app_path);
  if (!app.ok()) return Fail(app.error());
  machine.Load(std::move(app).take());
  for (const std::string& path : vfs_files) {
    machine.kernel().add_file(path, std::vector<uint8_t>(256, 'x'));
  }

  std::string plan_text;
  if (!ReadTextFile(plan_path, &plan_text)) {
    return Fail("cannot read " + plan_path);
  }
  auto plan = core::Plan::FromXml(plan_text);
  if (!plan.ok()) return Fail(plan_path + ": " + plan.error());
  std::vector<core::FaultProfile> profiles;
  if (auto st = LoadProfiles(profile_paths, &profiles); !st.ok()) {
    return Fail(st.error());
  }

  core::Controller controller(machine);
  if (auto st = controller.Install(plan.value(), std::move(profiles));
      !st.ok()) {
    return Fail(st.error());
  }
  auto pid = machine.CreateProcess(entry);
  if (!pid.ok()) return Fail(pid.error());
  auto info = machine.RunToCompletion(pid.value());

  std::printf("-- injection log --\n%s", controller.log().ToText().c_str());
  if (!replay_out.empty()) {
    std::string xml = controller.GenerateReplay().ToXml();
    if (!WriteFile(replay_out, xml.data(), xml.size())) {
      return Fail("cannot write " + replay_out);
    }
    std::printf("replay script written to %s\n", replay_out.c_str());
  }
  if (info.state == vm::ProcState::Exited) {
    std::printf("target exited with code %lld after %zu injections\n",
                (long long)info.exit_code, controller.log().size());
    return 0;
  }
  std::printf("TARGET CRASHED: %s (%s) after %zu injections\n",
              vm::SignalName(info.signal), info.fault_message.c_str(),
              controller.log().size());
  return 3;
}

/// Target image shared by the campaign/explore subcommands: libc + user
/// libs + app, built/loaded once; workers load copies via `setup`.
struct TargetImage {
  std::shared_ptr<const sso::SharedObject> libc_so;
  std::shared_ptr<std::vector<sso::SharedObject>> libs;
  campaign::MachineSetup setup;

  std::vector<const sso::SharedObject*> images() const {
    std::vector<const sso::SharedObject*> out;
    out.push_back(libc_so.get());
    for (const sso::SharedObject& so : *libs) out.push_back(&so);
    return out;
  }
};

Result<TargetImage> BuildTarget(const std::string& app_path,
                                const std::vector<std::string>& lib_paths,
                                const std::vector<std::string>& vfs_files) {
  TargetImage target;
  target.libc_so =
      std::make_shared<const sso::SharedObject>(libc::BuildLibc());
  target.libs = std::make_shared<std::vector<sso::SharedObject>>();
  for (const std::string& path : lib_paths) {
    auto so = LoadSso(path);
    if (!so.ok()) return Err(so.error());
    target.libs->push_back(std::move(so).take());
  }
  auto app = LoadSso(app_path);
  if (!app.ok()) return Err(app.error());
  target.libs->push_back(std::move(app).take());
  auto files = std::make_shared<std::vector<std::string>>(vfs_files);
  auto libc_so = target.libc_so;
  auto libs = target.libs;
  target.setup = [libc_so, libs, files](vm::Machine& machine) {
    machine.Load(*libc_so);
    for (const sso::SharedObject& so : *libs) machine.Load(so);
    for (const std::string& path : *files) {
      machine.kernel().add_file(path, std::vector<uint8_t>(256, 'x'));
    }
  };
  return target;
}

/// Serializable form of the target for the campaign fabric: the exact
/// module images and VFS files the in-process setup loads, as wire bytes,
/// so worker machines and local machines are built from one source.
serve::TargetSpec SpecFromTarget(const TargetImage& target,
                                 const std::vector<std::string>& vfs_files) {
  serve::TargetSpec spec;
  spec.modules.push_back(target.libc_so->Serialize());
  for (const sso::SharedObject& so : *target.libs) {
    spec.modules.push_back(so.Serialize());
  }
  for (const std::string& path : vfs_files) {
    spec.files.emplace_back(path, std::vector<uint8_t>(256, 'x'));
  }
  return spec;
}

/// Parsed --workers/--connect state, shared by campaign and explore.
struct FabricSpec {
  uint64_t workers = 0;  // local worker processes to fork
  std::vector<std::pair<std::string, uint16_t>> connect;  // lfi serve daemons
};

/// --connect host:port[,host:port...]
Status ParseConnectList(const std::string& value, FabricSpec* spec) {
  size_t begin = 0;
  while (begin <= value.size()) {
    size_t end = value.find(',', begin);
    if (end == std::string::npos) end = value.size();
    std::string item = value.substr(begin, end - begin);
    size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Err("--connect needs host:port entries, got \"" + item + "\"");
    }
    auto port = ParseCountFlag("--connect", item.substr(colon + 1), 65535);
    if (!port.ok() || port.value() == 0) {
      return Err("--connect needs host:port entries, got \"" + item + "\"");
    }
    spec->connect.emplace_back(item.substr(0, colon),
                               static_cast<uint16_t>(port.value()));
    begin = end + 1;
    if (end == value.size()) break;
  }
  if (spec->connect.empty()) return Err("--connect needs host:port entries");
  return Status::Ok();
}

/// Build the fabric coordinator when --workers/--connect asked for one;
/// nullptr means "run in-process as before". Worker trouble is never
/// fatal: unreachable daemons are reported on stderr and the coordinator
/// itself degrades to in-process execution when nothing is live — and
/// everything fabric-related prints to stderr, because stdout must stay
/// byte-identical between distributed and single-process runs (CI diffs
/// them).
std::unique_ptr<serve::FabricCoordinator> BuildFabric(
    const FabricSpec& fspec, const TargetImage& target,
    const std::vector<std::string>& vfs_files,
    const std::vector<core::FaultProfile>& profiles,
    const campaign::CampaignOptions& opts) {
  if (fspec.workers == 0 && fspec.connect.empty()) return nullptr;
  // Fork the local workers before anything spawns a thread (the
  // coordinator's Run does): fork in a threaded process is undefined
  // behavior territory.
  std::vector<serve::LocalWorker> spawned;
  for (uint64_t i = 0; i < fspec.workers; ++i) {
    auto worker = serve::SpawnLocalWorker();
    if (!worker.ok()) {
      std::fprintf(stderr, "lfi: fabric: %s\n", worker.error().c_str());
      continue;
    }
    spawned.push_back(worker.value());
  }
  auto fabric = std::make_unique<serve::FabricCoordinator>(
      SpecFromTarget(target, vfs_files), profiles, opts);
  for (const serve::LocalWorker& worker : spawned) {
    if (auto st = fabric->AddWorkerFd(worker.fd, Format("pid-%d", worker.pid));
        !st.ok()) {
      std::fprintf(stderr, "lfi: fabric: %s\n", st.error().c_str());
    }
  }
  for (const auto& [host, port] : fspec.connect) {
    if (auto st = fabric->ConnectWorker(host, port); !st.ok()) {
      std::fprintf(stderr, "lfi: fabric: %s\n", st.error().c_str());
    }
  }
  if (fabric->live_workers() == 0) {
    std::fprintf(stderr,
                 "lfi: fabric: no reachable workers; running in-process\n");
  }
  return fabric;
}

void PrintFabricStats(const serve::FabricStats& fs) {
  std::fprintf(stderr,
               "fabric: %zu worker(s), %zu lost | %zu batch(es) dispatched, "
               "%zu retried, %zu stolen | %zu scenario(s) remote, %zu local\n",
               fs.workers_connected, fs.workers_lost, fs.batches_dispatched,
               fs.batches_retried, fs.batches_stolen, fs.scenarios_remote,
               fs.scenarios_local);
}

// lfi serve: a campaign fabric worker daemon. Hosts a machine pool and
// executes scenario batches for campaign/explore coordinators
// (--workers forks anonymous local workers; --connect dials daemons
// started here).
int CmdServe(const std::vector<std::string>& args) {
  serve::WorkerConfig config;
  bool once = false;
  for (size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (args[i] == "--port") {
      auto v = ParseCountFlag("--port", next(), 65535);
      if (!v.ok()) return Fail("serve: " + v.error());
      config.port = static_cast<uint16_t>(v.value());
    } else if (args[i] == "--jobs") {
      auto v = ParseCountFlag("--jobs", next(), 1'000'000);
      if (!v.ok()) return Fail("serve: " + v.error());
      config.jobs = static_cast<int>(v.value());
    } else if (args[i] == "--abort-after") {
      // Deterministic crash hook for tests/CI: hard-close the connection
      // after N scenarios, like a kill -9 at a reproducible instant.
      auto v = ParseCountFlag("--abort-after", next());
      if (!v.ok()) return Fail("serve: " + v.error());
      config.abort_after_scenarios = v.value();
    } else if (args[i] == "--once") {
      once = true;
    } else {
      return Fail("serve: unknown argument " + args[i]);
    }
  }
  serve::WorkerServer server(config);
  auto port = server.Listen();
  if (!port.ok()) return Fail(port.error());
  // The port line is the daemon's contract with scripts (CI scrapes it);
  // flush so a piped reader sees it before the first campaign arrives.
  std::printf("lfi serve: listening on 127.0.0.1:%u\n", port.value());
  std::fflush(stdout);
  if (once) {
    if (auto st = server.ServeOnce(); !st.ok()) {
      std::fprintf(stderr, "lfi: serve: %s\n", st.error().c_str());
      return 1;
    }
    return 0;
  }
  server.ServeForever();
  return 0;
}

// lfi campaign: generate a scenario set and fan it out across workers.
// Exit codes: 0 = no findings, 3 = at least one scenario crashed the
// target (findings!), 1 = usage/setup error.
int CmdCampaign(const std::vector<std::string>& args) {
  std::string app_path, entry = "main", coverage_out;
  std::vector<std::string> lib_paths, profile_paths, vfs_files;
  double probability = -1;
  bool exhaustive = false;
  uint64_t seed = 1;
  int scenarios_requested = 0;
  campaign::CampaignOptions opts;
  FabricSpec fabric_spec;
  for (size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (args[i] == "--app") app_path = next();
    else if (args[i] == "--entry") entry = next();
    else if (args[i] == "--lib") lib_paths.push_back(next());
    else if (args[i] == "--profile") profile_paths.push_back(next());
    else if (args[i] == "--file") vfs_files.push_back(next());
    else if (args[i] == "--random") {
      auto p = ParseProbabilityFlag("--random", next());
      if (!p.ok()) return Fail("campaign: " + p.error());
      probability = p.value();
    }
    else if (args[i] == "--exhaustive") exhaustive = true;
    else if (args[i] == "--snapshot") opts.snapshot = true;
    else if (args[i] == "--snapshot-tree") opts.snapshot_tree = true;
    else if (args[i] == "--feasible-only") opts.controller.feasible_only = true;
    else if (args[i] == "--exec") {
      std::string name = next();
      auto mode = vm::ParseExecMode(name);
      if (!mode) {
        return Fail("campaign: unknown --exec engine \"" + name +
                    "\" (superblock, predecoded, or reference)");
      }
      opts.exec_mode = *mode;
    }
    else if (args[i] == "--seed" || args[i] == "--scenarios" ||
             args[i] == "--jobs" || args[i] == "--budget" ||
             args[i] == "--warmup") {
      std::string flag = args[i];
      uint64_t max =
          (flag == "--scenarios" || flag == "--jobs") ? 1'000'000 : UINT64_MAX;
      auto v = ParseCountFlag(flag, next(), max);
      if (!v.ok()) return Fail("campaign: " + v.error());
      if (flag == "--seed") seed = v.value();
      else if (flag == "--scenarios") scenarios_requested = static_cast<int>(v.value());
      else if (flag == "--jobs") opts.jobs = static_cast<int>(v.value());
      else if (flag == "--budget") {
        if (v.value() == 0) return Fail("campaign: --budget must be > 0");
        opts.max_instructions = v.value();
      }
      else if (flag == "--warmup") opts.warmup_instructions = v.value();
    }
    else if (args[i] == "--coverage") {
      // Strict, like --jobs: the flag needs a real value, not another flag.
      coverage_out = next();
      if (coverage_out.empty() || coverage_out.rfind("--", 0) == 0) {
        return Fail("campaign: --coverage needs an output file path, got \"" +
                    coverage_out + "\"");
      }
      opts.track_coverage = true;
    }
    else if (args[i] == "--shard") {
      std::string policy = next();
      if (policy == "balanced") opts.shard = campaign::ShardPolicy::SizeBalanced;
      else if (policy == "rr") opts.shard = campaign::ShardPolicy::RoundRobin;
      else return Fail("campaign: unknown shard policy " + policy);
    }
    else if (args[i] == "--workers") {
      auto v = ParseCountFlag("--workers", next(), 64);
      if (!v.ok()) return Fail("campaign: " + v.error());
      fabric_spec.workers = v.value();
    }
    else if (args[i] == "--connect") {
      if (auto st = ParseConnectList(next(), &fabric_spec); !st.ok()) {
        return Fail("campaign: " + st.error());
      }
    } else {
      return Fail("campaign: unknown argument " + args[i]);
    }
  }
  if (app_path.empty()) return Fail("campaign: need --app");
  if (!exhaustive && probability < 0) {
    return Fail("campaign: need --random <p> or --exhaustive");
  }

  // Build the target image once; workers load copies.
  auto target = BuildTarget(app_path, lib_paths, vfs_files);
  if (!target.ok()) return Fail(target.error());

  std::vector<core::FaultProfile> profiles;
  if (auto st = LoadProfiles(profile_paths, &profiles); !st.ok()) {
    return Fail(st.error());
  }

  // Scenario set: one exhaustive plan (rotate triggers are RNG-free, so
  // replicas would be byte-identical), or N independently-seeded random
  // plans (seeds derived from --seed, one stream per scenario).
  size_t count = 1;
  if (exhaustive) {
    if (scenarios_requested > 1) {
      std::fprintf(stderr,
                   "lfi: campaign: --exhaustive is deterministic; running 1 "
                   "scenario (ignoring --scenarios %d)\n",
                   scenarios_requested);
    }
  } else {
    count = scenarios_requested > 0 ? static_cast<size_t>(scenarios_requested)
                                    : 64;
  }
  std::vector<campaign::Scenario> scenarios;
  for (size_t i = 0; i < count; ++i) {
    campaign::Scenario s;
    if (exhaustive) {
      s.name = "exhaustive";
      s.plan = core::GenerateExhaustive(profiles);
    } else {
      s.name = Format("random-p%g-%zu", probability, i);
      s.plan = core::GenerateRandom(profiles, probability,
                                    campaign::DeriveSeed(seed, i));
    }
    scenarios.push_back(std::move(s));
  }

  opts.entry = entry;
  // Same scenarios, same options, two execution paths: the fabric
  // coordinator (when --workers/--connect asked for one) or the
  // in-process runner. The report is byte-identical either way
  // (test- and CI-enforced), so everything below is path-agnostic.
  campaign::CampaignReport report;
  if (auto fabric =
          BuildFabric(fabric_spec, target.value(), vfs_files, profiles, opts)) {
    report = fabric->Run(scenarios);
    PrintFabricStats(fabric->stats());
  } else {
    campaign::CampaignRunner runner(target.value().setup, std::move(profiles),
                                    opts);
    report = runner.Run(scenarios);
  }
  std::printf("%s", report.ToText().c_str());
  if (opts.track_coverage) {
    // Project the aggregated union bitmaps onto each module's CFG block
    // starts and dump per-module block coverage.
    std::vector<const sso::SharedObject*> images = target.value().images();
    std::string dump;
    for (const auto& [module, bitmap] : report.coverage) {
      std::printf("coverage %s: %zu offsets\n", module.c_str(),
                  bitmap.Count());
      const sso::SharedObject* image = nullptr;
      for (const sso::SharedObject* so : images) {
        if (so->name == module) {
          image = so;
          break;
        }
      }
      if (image == nullptr) continue;  // e.g. the kernel image
      auto [covered, total] = apps::BlockCoverage(*image, bitmap);
      double pct =
          total == 0 ? 0.0
                     : 100.0 * static_cast<double>(covered) /
                           static_cast<double>(total);
      dump += Format("%s blocks %zu/%zu %.1f%% offsets %zu\n", module.c_str(),
                     covered, total, pct, bitmap.Count());
    }
    if (!WriteFile(coverage_out, dump.data(), dump.size())) {
      return Fail("cannot write " + coverage_out);
    }
    // Status goes to stderr: stdout stays byte-identical across --jobs
    // counts (the CI determinism check diffs it).
    std::fprintf(stderr, "block-coverage report written to %s\n",
                 coverage_out.c_str());
  }
  return report.crashes > 0 ? 3 : 0;
}

// lfi seu: single-event-upset campaign — flip one bit per scenario and
// classify each run against the fault-free golden run. Targets either an
// .sso app (--app) or the built-in hardened evaluation guest (--guest
// none|dwc|cfcss|tmr). Everything on stdout is jobs- and engine-invariant
// (CI diffs it); exit codes: 0 = no silent corruption, 3 = at least one
// SDC flip found, 1 = usage/setup error.
int CmdSeu(const std::vector<std::string>& args) {
  std::string app_path, guest_name, entry = "main", sdc_out;
  std::vector<std::string> lib_paths, vfs_files;
  uint64_t flips = 64, seed = 1, rounds = 4;
  bool sdc_search = false;
  bool want_reg = true, want_stack = true, want_heap = false,
       want_data = false;
  campaign::CampaignOptions opts;
  FabricSpec fabric_spec;
  for (size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (args[i] == "--app") app_path = next();
    else if (args[i] == "--guest") guest_name = next();
    else if (args[i] == "--entry") entry = next();
    else if (args[i] == "--lib") lib_paths.push_back(next());
    else if (args[i] == "--file") vfs_files.push_back(next());
    else if (args[i] == "--snapshot") opts.snapshot = true;
    else if (args[i] == "--snapshot-tree") opts.snapshot_tree = true;
    else if (args[i] == "--sdc-search") sdc_search = true;
    else if (args[i] == "--exec") {
      std::string name = next();
      auto mode = vm::ParseExecMode(name);
      if (!mode) {
        return Fail("seu: unknown --exec engine \"" + name +
                    "\" (superblock, predecoded, or reference)");
      }
      opts.exec_mode = *mode;
    }
    else if (args[i] == "--targets") {
      // Comma-separated subset of reg,stack,heap,data.
      want_reg = want_stack = want_heap = want_data = false;
      std::string list = next();
      size_t begin = 0;
      while (begin <= list.size()) {
        size_t end = list.find(',', begin);
        if (end == std::string::npos) end = list.size();
        std::string item = list.substr(begin, end - begin);
        if (item == "reg") want_reg = true;
        else if (item == "stack") want_stack = true;
        else if (item == "heap") want_heap = true;
        else if (item == "data") want_data = true;
        else {
          return Fail("seu: --targets wants reg,stack,heap,data; got \"" +
                      item + "\"");
        }
        if (end == list.size()) break;
        begin = end + 1;
      }
      if (!want_reg && !want_stack && !want_heap && !want_data) {
        return Fail("seu: --targets needs at least one target");
      }
    }
    else if (args[i] == "--flips" || args[i] == "--seed" ||
             args[i] == "--jobs" || args[i] == "--budget" ||
             args[i] == "--warmup" || args[i] == "--rounds") {
      std::string flag = args[i];
      uint64_t max = (flag == "--flips" || flag == "--jobs" ||
                      flag == "--rounds")
                         ? 1'000'000
                         : UINT64_MAX;
      auto v = ParseCountFlag(flag, next(), max);
      if (!v.ok()) return Fail("seu: " + v.error());
      if (flag == "--flips") {
        if (v.value() == 0) return Fail("seu: --flips must be > 0");
        flips = v.value();
      } else if (flag == "--seed") seed = v.value();
      else if (flag == "--jobs") opts.jobs = static_cast<int>(v.value());
      else if (flag == "--budget") {
        if (v.value() == 0) return Fail("seu: --budget must be > 0");
        opts.max_instructions = v.value();
      }
      else if (flag == "--warmup") opts.warmup_instructions = v.value();
      else if (flag == "--rounds") {
        if (v.value() == 0) return Fail("seu: --rounds must be > 0");
        rounds = v.value();
      }
    }
    else if (args[i] == "--sdc-out") {
      sdc_out = next();
      if (sdc_out.empty() || sdc_out.rfind("--", 0) == 0) {
        return Fail("seu: --sdc-out needs a directory path, got \"" +
                    sdc_out + "\"");
      }
    }
    else if (args[i] == "--workers") {
      auto v = ParseCountFlag("--workers", next(), 64);
      if (!v.ok()) return Fail("seu: " + v.error());
      fabric_spec.workers = v.value();
    }
    else if (args[i] == "--connect") {
      if (auto st = ParseConnectList(next(), &fabric_spec); !st.ok()) {
        return Fail("seu: " + st.error());
      }
    } else {
      return Fail("seu: unknown argument " + args[i]);
    }
  }
  if (app_path.empty() == guest_name.empty()) {
    return Fail("seu: need exactly one of --app <sso> or --guest "
                "none|dwc|cfcss|tmr");
  }

  TargetImage target_image;
  if (!guest_name.empty()) {
    apps::HardeningMode mode;
    if (guest_name == "none") mode = apps::HardeningMode::None;
    else if (guest_name == "dwc") mode = apps::HardeningMode::Dwc;
    else if (guest_name == "cfcss") mode = apps::HardeningMode::Cfcss;
    else if (guest_name == "tmr") mode = apps::HardeningMode::Tmr;
    else {
      return Fail("seu: unknown --guest \"" + guest_name +
                  "\" (none, dwc, cfcss, or tmr)");
    }
    auto guest = apps::BuildSeuGuest(mode);
    if (!guest.ok()) return Fail("seu: " + guest.error());
    target_image.libc_so =
        std::make_shared<const sso::SharedObject>(libc::BuildLibc());
    target_image.libs = std::make_shared<std::vector<sso::SharedObject>>();
    target_image.libs->push_back(std::move(guest).take());
    auto libc_so = target_image.libc_so;
    auto libs = target_image.libs;
    target_image.setup = [libc_so, libs](vm::Machine& machine) {
      machine.Load(*libc_so);
      for (const sso::SharedObject& so : *libs) machine.Load(so);
    };
  } else {
    auto target = BuildTarget(app_path, lib_paths, vfs_files);
    if (!target.ok()) return Fail(target.error());
    target_image = std::move(target).take();
  }

  opts.entry = entry;
  opts.collect_state_digest = true;
  // No fault profiles: SEU campaigns perturb state directly; the trigger
  // machinery stays idle.
  std::vector<core::FaultProfile> profiles;
  auto fabric =
      BuildFabric(fabric_spec, target_image, vfs_files, profiles, opts);
  campaign::CampaignRunner runner(target_image.setup, profiles, opts);
  campaign::ScenarioDispatch& dispatch =
      fabric ? static_cast<campaign::ScenarioDispatch&>(*fabric)
             : static_cast<campaign::ScenarioDispatch&>(runner);

  // Golden run: the same scenario with no faults. Every flip is judged
  // against its exit code and architectural state digest.
  campaign::Scenario golden_scenario;
  golden_scenario.name = "golden";
  campaign::CampaignReport golden_report = dispatch.Run({golden_scenario});
  if (golden_report.results.empty()) return Fail("seu: golden run produced no result");
  campaign::GoldenRun golden =
      campaign::GoldenFrom(golden_report.results.front());
  if (golden.status != campaign::ScenarioStatus::Exited) {
    return Fail("seu: golden run did not exit cleanly; cannot classify flips");
  }
  std::printf("golden: exit=%lld instructions=%llu digest=%016llx\n",
              (long long)golden.exit_code,
              (unsigned long long)golden.instructions,
              (unsigned long long)golden.state_digest);

  campaign::SeuSweepSpec space;
  space.instants_from = 0;
  space.instants_to = golden.instructions > 0 ? golden.instructions - 1 : 0;
  space.samples = static_cast<size_t>(flips);
  space.seed = seed;
  space.regs = want_reg;
  space.stack = want_stack;
  space.heap = want_heap;
  space.data = want_data;
  if (want_data) {
    const sso::SharedObject& app_so = target_image.libs->back();
    space.data_module = app_so.name;
    space.data_bytes = app_so.data.size();
    if (space.data_bytes < 8) {
      return Fail("seu: --targets data, but " + app_so.name +
                  " has no flippable data section");
    }
  }

  campaign::SeuCampaignReport report;
  std::vector<campaign::Scenario> sdc_scenarios;
  if (sdc_search) {
    campaign::SeuSearchOptions sopts;
    sopts.rounds = static_cast<size_t>(rounds);
    sopts.per_round = static_cast<size_t>(flips);
    sopts.detect_exit_code = isa::kSeuDetectExitCode;
    campaign::SeuSearchResult found =
        campaign::SdcDirectedSearch(dispatch, space, golden, sopts);
    report = std::move(found.report);
    sdc_scenarios = std::move(found.sdc_scenarios);
    std::printf("sdc-search: %zu round(s)\n", found.rounds_run);
  } else {
    std::vector<campaign::Scenario> sweep = campaign::BuildSeuSweep(space);
    campaign::CampaignReport raw = dispatch.Run(sweep);
    report = campaign::ClassifyCampaign(raw, golden, isa::kSeuDetectExitCode);
    for (size_t i = 0; i < report.verdicts.size(); ++i) {
      if (report.verdicts[i].outcome == campaign::SeuOutcome::Sdc) {
        sdc_scenarios.push_back(sweep[i]);
      }
    }
  }
  std::printf("%s", report.ToText().c_str());
  if (fabric) PrintFabricStats(fabric->stats());

  // Persist SDC reproducers as plan XML (replayable with `lfi test`-style
  // tooling or a follow-up sweep): one file per silent corruption.
  if (!sdc_out.empty() && !sdc_scenarios.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(sdc_out, ec);
    if (ec) return Fail("cannot create " + sdc_out + ": " + ec.message());
    for (size_t i = 0; i < sdc_scenarios.size(); ++i) {
      std::string xml = sdc_scenarios[i].plan.ToXml();
      std::string path = sdc_out + Format("/sdc-%04zu.xml", i);
      if (!WriteFile(path, xml.data(), xml.size())) {
        return Fail("cannot write " + path);
      }
    }
    std::fprintf(stderr, "%zu sdc reproducer(s) -> %s\n",
                 sdc_scenarios.size(), sdc_out.c_str());
  }
  return report.counts.sdc > 0 ? 3 : 0;
}

/// Regular files in `dir` named `<prefix>...xml`, sorted by path (the
/// explore corpus layout: plan-NNNN.xml and crash-<hash>.xml).
std::vector<std::string> ListCorpusFiles(const std::string& dir,
                                         const std::string& prefix) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    std::string name = e.path().filename().string();
    if (e.is_regular_file() && name.rfind(prefix, 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".xml") {
      out.push_back(e.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// lfi explore: coverage-guided, multi-round campaign exploration with
// crash triage and replay-based minimization. Exit codes: 0 = no unique
// crashes, 3 = findings, 1 = usage/setup error.
//
// Everything printed to stdout is jobs-invariant (round stats, crash
// buckets, corpus contents) — CI diffs --jobs 1 against --jobs N.
int CmdExplore(const std::vector<std::string>& args) {
  std::string app_path, entry = "main", corpus_dir;
  std::vector<std::string> lib_paths, profile_paths, vfs_files;
  campaign::ExplorerOptions eopts;
  FabricSpec fabric_spec;
  for (size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (args[i] == "--app") app_path = next();
    else if (args[i] == "--entry") entry = next();
    else if (args[i] == "--lib") lib_paths.push_back(next());
    else if (args[i] == "--profile") profile_paths.push_back(next());
    else if (args[i] == "--file") vfs_files.push_back(next());
    else if (args[i] == "--corpus-dir") {
      // Strict, like --coverage: the flag needs a real path, not another
      // flag (a misparse here would create a directory named "--foo").
      corpus_dir = next();
      if (corpus_dir.empty() || corpus_dir.rfind("--", 0) == 0) {
        return Fail("explore: --corpus-dir needs a directory path, got \"" +
                    corpus_dir + "\"");
      }
    }
    else if (args[i] == "--probability") {
      auto p = ParseProbabilityFlag("--probability", next());
      if (!p.ok()) return Fail("explore: " + p.error());
      eopts.seed_probability = p.value();
    }
    else if (args[i] == "--no-minimize") eopts.minimize_crashes = false;
    else if (args[i] == "--snapshot") eopts.campaign.snapshot = true;
    else if (args[i] == "--snapshot-tree") eopts.campaign.snapshot_tree = true;
    else if (args[i] == "--fork-windows") eopts.fork_windows = true;
    else if (args[i] == "--fitness") {
      std::string name = next();
      auto kind = campaign::ParseFitnessKind(name);
      if (!kind) {
        return Fail("explore: unknown --fitness \"" + name +
                    "\" (coverage or cfg-distance)");
      }
      eopts.fitness = *kind;
    }
    else if (args[i] == "--feasible-only") {
      eopts.campaign.controller.feasible_only = true;
    }
    else if (args[i] == "--exec") {
      std::string name = next();
      auto mode = vm::ParseExecMode(name);
      if (!mode) {
        return Fail("explore: unknown --exec engine \"" + name +
                    "\" (superblock, predecoded, or reference)");
      }
      eopts.campaign.exec_mode = *mode;
    }
    else if (args[i] == "--rounds" || args[i] == "--budget" ||
             args[i] == "--seed" || args[i] == "--jobs" ||
             args[i] == "--instructions" || args[i] == "--warmup") {
      std::string flag = args[i];
      uint64_t max = (flag == "--rounds" || flag == "--budget" ||
                      flag == "--jobs")
                         ? 1'000'000
                         : UINT64_MAX;
      auto v = ParseCountFlag(flag, next(), max);
      if (!v.ok()) return Fail("explore: " + v.error());
      if (flag == "--rounds") {
        if (v.value() == 0) return Fail("explore: --rounds must be > 0");
        eopts.rounds = static_cast<size_t>(v.value());
      } else if (flag == "--budget") {
        if (v.value() == 0) return Fail("explore: --budget must be > 0");
        eopts.scenarios_per_round = static_cast<size_t>(v.value());
      } else if (flag == "--seed") {
        eopts.seed = v.value();
      } else if (flag == "--jobs") {
        eopts.campaign.jobs = static_cast<int>(v.value());
      } else if (flag == "--instructions") {
        if (v.value() == 0) return Fail("explore: --instructions must be > 0");
        eopts.campaign.max_instructions = v.value();
      } else if (flag == "--warmup") {
        eopts.campaign.warmup_instructions = v.value();
      }
    }
    else if (args[i] == "--workers") {
      auto v = ParseCountFlag("--workers", next(), 64);
      if (!v.ok()) return Fail("explore: " + v.error());
      fabric_spec.workers = v.value();
    }
    else if (args[i] == "--connect") {
      if (auto st = ParseConnectList(next(), &fabric_spec); !st.ok()) {
        return Fail("explore: " + st.error());
      }
    } else {
      return Fail("explore: unknown argument " + args[i]);
    }
  }
  if (app_path.empty()) return Fail("explore: need --app");

  auto target = BuildTarget(app_path, lib_paths, vfs_files);
  if (!target.ok()) return Fail(target.error());
  std::vector<core::FaultProfile> profiles;
  if (auto st = LoadProfiles(profile_paths, &profiles); !st.ok()) {
    return Fail(st.error());
  }

  // Resume from a persisted corpus: plan-*.xml files, sorted by name so
  // the seed population order is deterministic.
  std::vector<core::Plan> initial_corpus;
  namespace fs = std::filesystem;
  if (!corpus_dir.empty() && fs::is_directory(corpus_dir)) {
    for (const std::string& path : ListCorpusFiles(corpus_dir, "plan-")) {
      std::string text;
      if (!ReadTextFile(path, &text)) return Fail("cannot read " + path);
      auto plan = core::Plan::FromXml(text);
      if (!plan.ok()) return Fail(path + ": " + plan.error());
      initial_corpus.push_back(std::move(plan).take());
    }
    if (!initial_corpus.empty()) {
      std::printf("resuming from %zu corpus plan(s) in %s\n",
                  initial_corpus.size(), corpus_dir.c_str());
    }
  }

  eopts.campaign.entry = entry;
  eopts.on_round = [](const campaign::RoundStats& rs) {
    std::printf(
        "round %zu: %zu scenarios, %zu crashed (%zu new buckets), "
        "%zu winners, +%zu offsets, union %zu offsets, corpus %zu\n",
        rs.round + 1, rs.scenarios, rs.crashes, rs.new_crash_buckets,
        rs.winners, rs.new_offsets, rs.union_offsets, rs.corpus_size);
    std::fflush(stdout);
  };
  // When the fabric is on, every exploration round fans out through the
  // coordinator (configured with the explorer's forced collection flags);
  // crash minimization stays in-process either way.
  auto fabric =
      BuildFabric(fabric_spec, target.value(), vfs_files, profiles,
                  campaign::Explorer::DispatchOptions(eopts.campaign));
  eopts.dispatch = fabric.get();
  campaign::Explorer explorer(target.value().setup, std::move(profiles),
                              eopts);
  campaign::ExplorerReport report =
      explorer.Explore(std::move(initial_corpus));
  if (fabric) PrintFabricStats(fabric->stats());

  // Round lines were already printed live; print the crash summary.
  for (const campaign::CrashReport& cr : report.crashes) {
    std::printf(
        "crash %016llx: %s | %zu hit(s), first %s (round %zu) | replay %zu "
        "-> minimized %zu trigger(s)%s\n",
        (unsigned long long)cr.hash, cr.signature.c_str(), cr.count,
        cr.scenario_name.c_str(), cr.first_round + 1,
        cr.replay.triggers.size(), cr.minimized.triggers.size(),
        cr.reproduces ? ", reproduces" : "");
  }

  // Persist the corpus + minimized reproducers as plan XML.
  if (!corpus_dir.empty()) {
    std::error_code ec;
    fs::create_directories(corpus_dir, ec);
    if (ec) return Fail("cannot create " + corpus_dir + ": " + ec.message());
    // Drop stale plan/crash files first (collected before removing — no
    // deletion under a live directory_iterator): the directory must equal
    // this run's report, or the next resume would seed from a mix of two
    // corpora and stale reproducers would linger as phantom findings.
    for (const char* prefix : {"plan-", "crash-"}) {
      for (const std::string& path : ListCorpusFiles(corpus_dir, prefix)) {
        fs::remove(path, ec);
      }
    }
    for (size_t i = 0; i < report.corpus.size(); ++i) {
      std::string xml = report.corpus[i].ToXml();
      std::string path = corpus_dir + Format("/plan-%04zu.xml", i);
      if (!WriteFile(path, xml.data(), xml.size())) {
        return Fail("cannot write " + path);
      }
    }
    for (const campaign::CrashReport& cr : report.crashes) {
      std::string xml = cr.minimized.ToXml();
      std::string path =
          corpus_dir + Format("/crash-%016llx.xml", (unsigned long long)cr.hash);
      if (!WriteFile(path, xml.data(), xml.size())) {
        return Fail("cannot write " + path);
      }
    }
    // Status to stderr: stdout stays byte-identical across --jobs counts.
    std::fprintf(stderr, "corpus (%zu plans, %zu crash reproducers) -> %s\n",
                 report.corpus.size(), report.crashes.size(),
                 corpus_dir.c_str());
  }
  return report.crashes.empty() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::printf(
        "usage: lfi <command> [args]\n"
        "  demo-assets <dir>     write demo libc/kernel/app binaries\n"
        "  disasm <lib.sso>      disassemble a synthetic shared object\n"
        "  profile <sso...> [-o profile.xml] [--max-states N]\n"
        "  generate (--random p | --exhaustive) [--seed n] <profile.xml...>"
        " [-o plan.xml]\n"
        "  test --app <sso> --plan <plan.xml> [--entry sym] [--profile xml]\n"
        "       [--lib sso]... [--file path]... [--replay-out plan.xml]\n"
        "  campaign --app <sso> (--random p | --exhaustive)\n"
        "       [--scenarios N] [--seed n] [--jobs N] [--shard rr|balanced]\n"
        "       [--entry sym] [--profile xml]... [--lib sso]...\n"
        "       [--file path]... [--coverage report.txt]\n"
        "       [--budget instructions] [--snapshot | --snapshot-tree]\n"
        "       [--warmup instructions] [--feasible-only]\n"
        "       [--exec superblock|predecoded|reference]\n"
        "       [--workers N] [--connect host:port[,host:port...]]\n"
        "  explore --app <sso> [--rounds N] [--budget scenarios-per-round]\n"
        "       [--seed n] [--jobs N] [--corpus-dir dir] [--probability p]\n"
        "       [--entry sym] [--profile xml]... [--lib sso]...\n"
        "       [--file path]... [--instructions N] [--no-minimize]\n"
        "       [--snapshot | --snapshot-tree] [--fork-windows]\n"
        "       [--fitness coverage|cfg-distance] [--feasible-only]\n"
        "       [--warmup instructions]\n"
        "       [--exec superblock|predecoded|reference]\n"
        "       [--workers N] [--connect host:port[,host:port...]]\n"
        "  seu (--app <sso> | --guest none|dwc|cfcss|tmr) [--flips N]\n"
        "       [--seed n] [--jobs N] [--targets reg,stack,heap,data]\n"
        "       [--entry sym] [--lib sso]... [--file path]...\n"
        "       [--budget instructions] [--warmup instructions]\n"
        "       [--snapshot | --snapshot-tree]\n"
        "       [--exec superblock|predecoded|reference]\n"
        "       [--sdc-search] [--rounds N] [--sdc-out dir]\n"
        "       [--workers N] [--connect host:port[,host:port...]]\n"
        "  serve [--port N] [--jobs N] [--once] [--abort-after N]\n");
    return 1;
  }
  std::string cmd = args[0];
  args.erase(args.begin());
  if (cmd == "demo-assets") return CmdDemoAssets(args);
  if (cmd == "disasm") return CmdDisasm(args);
  if (cmd == "profile") return CmdProfile(args);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "test") return CmdTest(args);
  if (cmd == "campaign") return CmdCampaign(args);
  if (cmd == "explore") return CmdExplore(args);
  if (cmd == "seu") return CmdSeu(args);
  if (cmd == "serve") return CmdServe(args);
  return Fail("unknown command: " + cmd);
}
