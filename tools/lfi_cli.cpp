// The `lfi` command-line tool — the paper's two-command workflow (§6.1:
// "it requires issuing two commands, one for profiling and one for running
// the tests"), plus utilities for working with synthetic binaries.
//
//   lfi demo-assets <dir>                 write libc/kernel/demo-app binaries
//   lfi disasm <lib.sso>                  objdump-style listing
//   lfi profile <target.sso> [deps...] -o profile.xml
//   lfi generate (--random p | --exhaustive) [--seed n] <profile.xml...>
//                -o plan.xml
//   lfi test --app <app.sso> --entry <symbol> --plan <plan.xml>
//            --profile <profile.xml> [--lib <dep.sso>]... [--file path]...
//
// Exit codes from `lfi test`: 0 = target exited cleanly, 3 = target
// crashed under injection (a finding!), 1 = usage/setup error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/profiler.hpp"
#include "core/scenario_gen.hpp"
#include "isa/codebuilder.hpp"
#include "kernel/kernel_image.hpp"
#include "libc/libc_builder.hpp"
#include "vm/machine.hpp"

using namespace lfi;

namespace {

bool ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

bool ReadTextFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

bool WriteFile(const std::string& path, const void* data, size_t size) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  return out.good();
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "lfi: %s\n", message.c_str());
  return 1;
}

Result<sso::SharedObject> LoadSso(const std::string& path) {
  std::vector<uint8_t> bytes;
  if (!ReadFile(path, &bytes)) return Err("cannot read " + path);
  return sso::SharedObject::Parse(bytes);
}

/// A demo application with an unchecked read() for `lfi test` to break.
sso::SharedObject BuildDemoApp() {
  isa::CodeBuilder b;
  uint32_t path = b.emit_data({'/', 'e', 't', 'c', '/', 'c', 'f', 'g', 0});
  uint32_t buf = b.reserve_data(128);
  b.begin_function("main");
  b.sub_ri(isa::Reg::SP, 16);
  b.mov_ri(isa::Reg::R2, libc::O_RDONLY);
  b.lea_data(isa::Reg::R1, static_cast<int32_t>(path));
  b.push(isa::Reg::R2);
  b.push(isa::Reg::R1);
  b.call_sym("open");
  b.add_ri(isa::Reg::SP, 16);
  b.store(isa::Reg::BP, -8, isa::Reg::R0);
  b.load(isa::Reg::R1, isa::Reg::BP, -8);
  b.lea_data(isa::Reg::R2, static_cast<int32_t>(buf));
  b.mov_ri(isa::Reg::R3, 64);
  b.push(isa::Reg::R3);
  b.push(isa::Reg::R2);
  b.push(isa::Reg::R1);
  b.call_sym("read");
  b.add_ri(isa::Reg::SP, 24);
  // BUG: result not checked; negative counts abort (models a memcpy).
  auto ok = b.new_label();
  b.cmp_ri(isa::Reg::R0, 0);
  b.jge(ok);
  b.call_sym("abort");
  b.bind(ok);
  b.load(isa::Reg::R1, isa::Reg::BP, -8);
  b.push(isa::Reg::R1);
  b.call_sym("close");
  b.add_ri(isa::Reg::SP, 8);
  b.mov_ri(isa::Reg::R0, 0);
  b.leave_ret();
  b.end_function();
  return sso::FromCodeUnit("demoapp.so", b.Finish(), {libc::kLibcName});
}

int CmdDemoAssets(const std::vector<std::string>& args) {
  if (args.empty()) return Fail("demo-assets: missing output directory");
  const std::string dir = args[0];
  struct Asset {
    std::string file;
    sso::SharedObject object;
  };
  std::vector<Asset> assets;
  assets.push_back({dir + "/libc.sso", libc::BuildLibc()});
  assets.push_back({dir + "/kernel.sso", kernel::BuildKernelImage()});
  assets.push_back({dir + "/demoapp.sso", BuildDemoApp()});
  for (const Asset& a : assets) {
    std::vector<uint8_t> bytes = a.object.Serialize();
    if (!WriteFile(a.file, bytes.data(), bytes.size())) {
      return Fail("cannot write " + a.file);
    }
    std::printf("wrote %s (%zu bytes, %zu exports)\n", a.file.c_str(),
                bytes.size(), a.object.exports.size());
  }
  return 0;
}

int CmdDisasm(const std::vector<std::string>& args) {
  if (args.empty()) return Fail("disasm: missing .sso file");
  auto so = LoadSso(args[0]);
  if (!so.ok()) return Fail(so.error());
  std::printf("%s", so.value().Disassembly().c_str());
  return 0;
}

int CmdProfile(const std::vector<std::string>& args) {
  std::vector<std::string> inputs;
  std::string out_path;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (inputs.empty()) return Fail("profile: missing target .sso");

  std::vector<sso::SharedObject> objects;
  for (const std::string& path : inputs) {
    auto so = LoadSso(path);
    if (!so.ok()) return Fail(so.error());
    objects.push_back(std::move(so).take());
  }
  sso::SharedObject kernel_img = kernel::BuildKernelImage();
  analysis::Workspace ws;
  ws.SetKernel(&kernel_img);
  for (const auto& so : objects) ws.AddModule(&so);

  core::Profiler profiler(ws);
  auto profile = profiler.ProfileLibrary(objects[0]);
  if (!profile.ok()) return Fail(profile.error());
  std::string xml = profile.value().ToXml();
  if (out_path.empty()) {
    std::printf("%s", xml.c_str());
  } else if (!WriteFile(out_path, xml.data(), xml.size())) {
    return Fail("cannot write " + out_path);
  }
  std::fprintf(stderr,
               "profiled %zu functions in %.2f ms (%llu G' states)\n",
               profiler.stats().functions_profiled,
               profiler.stats().total_time.count() / 1e6,
               (unsigned long long)profiler.stats().states_explored);
  return 0;
}

int CmdGenerate(const std::vector<std::string>& args) {
  double probability = -1;
  bool exhaustive = false;
  uint64_t seed = 1;
  std::string out_path;
  std::vector<std::string> inputs;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--random" && i + 1 < args.size()) {
      probability = std::atof(args[++i].c_str());
    } else if (args[i] == "--exhaustive") {
      exhaustive = true;
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (inputs.empty()) return Fail("generate: missing profile.xml");
  if (!exhaustive && probability < 0) {
    return Fail("generate: need --random <p> or --exhaustive");
  }
  std::vector<core::FaultProfile> profiles;
  for (const std::string& path : inputs) {
    std::string text;
    if (!ReadTextFile(path, &text)) return Fail("cannot read " + path);
    auto profile = core::FaultProfile::FromXml(text);
    if (!profile.ok()) return Fail(path + ": " + profile.error());
    profiles.push_back(std::move(profile).take());
  }
  core::Plan plan = exhaustive
                        ? core::GenerateExhaustive(profiles)
                        : core::GenerateRandom(profiles, probability, seed);
  std::string xml = plan.ToXml();
  if (out_path.empty()) {
    std::printf("%s", xml.c_str());
  } else if (!WriteFile(out_path, xml.data(), xml.size())) {
    return Fail("cannot write " + out_path);
  }
  std::fprintf(stderr, "generated %zu triggers\n", plan.triggers.size());
  return 0;
}

int CmdTest(const std::vector<std::string>& args) {
  std::string app_path, entry = "main", plan_path, replay_out;
  std::vector<std::string> lib_paths, profile_paths, vfs_files;
  for (size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      return i + 1 < args.size() ? args[++i] : std::string();
    };
    if (args[i] == "--app") app_path = next();
    else if (args[i] == "--entry") entry = next();
    else if (args[i] == "--plan") plan_path = next();
    else if (args[i] == "--profile") profile_paths.push_back(next());
    else if (args[i] == "--lib") lib_paths.push_back(next());
    else if (args[i] == "--file") vfs_files.push_back(next());
    else if (args[i] == "--replay-out") replay_out = next();
    else return Fail("test: unknown argument " + args[i]);
  }
  if (app_path.empty() || plan_path.empty()) {
    return Fail("test: need --app and --plan");
  }

  vm::Machine machine;
  machine.Load(libc::BuildLibc());
  for (const std::string& path : lib_paths) {
    auto so = LoadSso(path);
    if (!so.ok()) return Fail(so.error());
    machine.Load(std::move(so).take());
  }
  auto app = LoadSso(app_path);
  if (!app.ok()) return Fail(app.error());
  machine.Load(std::move(app).take());
  for (const std::string& path : vfs_files) {
    machine.kernel().add_file(path, std::vector<uint8_t>(256, 'x'));
  }

  std::string plan_text;
  if (!ReadTextFile(plan_path, &plan_text)) {
    return Fail("cannot read " + plan_path);
  }
  auto plan = core::Plan::FromXml(plan_text);
  if (!plan.ok()) return Fail(plan_path + ": " + plan.error());
  std::vector<core::FaultProfile> profiles;
  for (const std::string& path : profile_paths) {
    std::string text;
    if (!ReadTextFile(path, &text)) return Fail("cannot read " + path);
    auto profile = core::FaultProfile::FromXml(text);
    if (!profile.ok()) return Fail(path + ": " + profile.error());
    profiles.push_back(std::move(profile).take());
  }

  core::Controller controller(machine);
  if (auto st = controller.Install(plan.value(), std::move(profiles));
      !st.ok()) {
    return Fail(st.error());
  }
  auto pid = machine.CreateProcess(entry);
  if (!pid.ok()) return Fail(pid.error());
  auto info = machine.RunToCompletion(pid.value());

  std::printf("-- injection log --\n%s", controller.log().ToText().c_str());
  if (!replay_out.empty()) {
    std::string xml = controller.GenerateReplay().ToXml();
    if (!WriteFile(replay_out, xml.data(), xml.size())) {
      return Fail("cannot write " + replay_out);
    }
    std::printf("replay script written to %s\n", replay_out.c_str());
  }
  if (info.state == vm::ProcState::Exited) {
    std::printf("target exited with code %lld after %zu injections\n",
                (long long)info.exit_code, controller.log().size());
    return 0;
  }
  std::printf("TARGET CRASHED: %s (%s) after %zu injections\n",
              vm::SignalName(info.signal), info.fault_message.c_str(),
              controller.log().size());
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::printf(
        "usage: lfi <command> [args]\n"
        "  demo-assets <dir>     write demo libc/kernel/app binaries\n"
        "  disasm <lib.sso>      disassemble a synthetic shared object\n"
        "  profile <sso...> [-o profile.xml]\n"
        "  generate (--random p | --exhaustive) [--seed n] <profile.xml...>"
        " [-o plan.xml]\n"
        "  test --app <sso> --plan <plan.xml> [--entry sym] [--profile xml]\n"
        "       [--lib sso]... [--file path]... [--replay-out plan.xml]\n");
    return 1;
  }
  std::string cmd = args[0];
  args.erase(args.begin());
  if (cmd == "demo-assets") return CmdDemoAssets(args);
  if (cmd == "disasm") return CmdDisasm(args);
  if (cmd == "profile") return CmdProfile(args);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "test") return CmdTest(args);
  return Fail("unknown command: " + cmd);
}
